// DAG task-graph suite (ctest label: dag).
//
// Covers the release-on-completion arrival source end to end: the
// topological-order invariant (no successor is dispatched before its
// last predecessor retires) over hundreds of random seeded DAGs crossed
// with every registered policy, bit-identity between the streaming run
// and a batch replay of the realized arrival order, HETSCHED_THREADS
// invariance, checkpoint kill-and-resume at every stride boundary, the
// cp-aware policy's fall-back contract (identical to `proposed` when
// every rank is zero), and the golden dag_smoke scenario whose
// checked-in window stream and run report pin the release telemetry.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <limits>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "core/policy_registry.hpp"
#include "core/simulator.hpp"
#include "obs/latency.hpp"
#include "obs/run_report.hpp"
#include "obs/windowed.hpp"
#include "scenario/checkpoint.hpp"
#include "scenario/scenario_runner.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"
#include "workload/profile_cache.hpp"

namespace hetsched {
namespace {

// One suite build + one ANN training shared by every test in this file
// (the fixture policy is cp-aware, so the context carries a predictor
// for every predictor-backed contender).
struct World {
  Scenario base;
  ScenarioContext context;
};

// Layered random DAG over `nodes` jobs: every edge points from a lower
// to a strictly higher index, so the graph is acyclic by construction;
// a seen-set keeps edges unique.
DagSpec random_dag(Rng& rng, std::size_t nodes) {
  DagSpec spec;
  if (nodes < 2) return spec;
  std::vector<std::vector<char>> seen(nodes, std::vector<char>(nodes, 0));
  const std::size_t target = nodes / 2 + rng.below(nodes);
  for (std::size_t k = 0; k < target; ++k) {
    const std::size_t to = 1 + rng.below(nodes - 1);
    const std::size_t from = rng.below(to);
    if (seen[from][to]) continue;
    seen[from][to] = 1;
    spec.edges.push_back({from, to});
  }
  return spec;
}

World& world() {
  static World* w = [] {
    Scenario s;
    s.name = "dag-fixture";
    s.system = Scenario::SystemKind::kScaledHeterogeneous;
    s.cores = 4;
    s.policy = "cp-aware";
    s.seed = 42;
    s.arrivals.count = 120;
    s.arrivals.mean_interarrival_cycles = 40000.0;
    s.suite.kernel_scale = 0.25;
    s.suite.variants_per_kernel = 1;
    s.predictor_ensemble = 5;
    s.predictor_max_epochs = 120;
    Rng rng(7);
    s.dag = random_dag(rng, s.arrivals.count);
    return new World{s, ScenarioContext(s)};
  }();
  return *w;
}

std::string result_text(const SimulationResult& result) {
  std::ostringstream out;
  save_simulation_result(out, result);
  return out.str();
}

std::string windows_text(const WindowedCollector& collector) {
  std::ostringstream out;
  collector.write_jsonl(out);
  return out.str();
}

// Records first-dispatch and retirement times per job id — the raw
// material of the topological-order check.
struct PrecedenceRecorder final : public ScheduleObserver {
  static constexpr SimTime kNever = std::numeric_limits<SimTime>::max();
  std::vector<SimTime> first_dispatch;
  std::vector<SimTime> completion;

  void grow(std::uint64_t job_id) {
    const std::size_t need = static_cast<std::size_t>(job_id) + 1;
    if (first_dispatch.size() < need) {
      first_dispatch.resize(need, kNever);
      completion.resize(need, kNever);
    }
  }
  void on_dispatch(const DispatchEvent& event) override {
    grow(event.job_id);
    const std::size_t id = static_cast<std::size_t>(event.job_id);
    if (first_dispatch[id] == kNever) first_dispatch[id] = event.time;
  }
  void on_slice(const ScheduledSlice& slice) override {
    if (!slice.completed) return;
    grow(slice.job_id);
    completion[static_cast<std::size_t>(slice.job_id)] = slice.end;
  }
};

// Drives a DAG scenario through ScenarioRun (exposing the source) with a
// precedence recorder attached and checks every edge: the successor's
// first dispatch must not precede the predecessor's retirement.
void check_topological_order(const Scenario& scenario,
                             const ScenarioContext& context,
                             const std::string& where) {
  PrecedenceRecorder recorder;
  ScenarioRun run(scenario, context, &recorder);
  run.start();
  run.advance_until(std::numeric_limits<SimTime>::max());
  const SimulationResult result = run.finish();
  ASSERT_EQ(result.completed_jobs, scenario.arrivals.count) << where;
  ASSERT_NE(run.dag(), nullptr) << where;

  const std::vector<std::size_t>& emitted = run.dag()->emission_order();
  ASSERT_EQ(emitted.size(), scenario.arrivals.count) << where;
  std::vector<std::size_t> job_of(emitted.size(), SIZE_MAX);
  for (std::size_t job = 0; job < emitted.size(); ++job) {
    ASSERT_EQ(job_of[emitted[job]], SIZE_MAX)
        << where << ": node emitted twice";
    job_of[emitted[job]] = job;
  }
  ASSERT_EQ(recorder.completion.size(), emitted.size()) << where;

  for (const DagEdge& edge : scenario.dag.edges) {
    const SimTime retired = recorder.completion[job_of[edge.from]];
    const SimTime started = recorder.first_dispatch[job_of[edge.to]];
    ASSERT_NE(retired, PrecedenceRecorder::kNever) << where;
    ASSERT_NE(started, PrecedenceRecorder::kNever) << where;
    EXPECT_LE(retired, started)
        << where << ": job " << edge.to << " dispatched at " << started
        << " before predecessor " << edge.from << " retired at " << retired;
  }
}

// --- Rank / spec unit checks ---------------------------------------------

TEST(DagSpec, RanksAreLongestPathToSink) {
  // 0 -> 1 -> 3, 0 -> 2 -> 3, 2 -> 4; node 5 independent.
  DagSpec spec;
  spec.edges = {{0, 1}, {1, 3}, {0, 2}, {2, 3}, {2, 4}};
  ASSERT_FALSE(spec.validate(6).has_value());
  const std::vector<std::uint32_t> rank = spec.ranks(6);
  EXPECT_EQ(rank, (std::vector<std::uint32_t>{2, 1, 1, 0, 0, 0}));
}

TEST(DagSpec, ValidateRejectsStructuralErrors) {
  DagSpec out_of_range;
  out_of_range.edges = {{0, 5}};
  auto issue = out_of_range.validate(3);
  ASSERT_TRUE(issue.has_value());
  EXPECT_EQ(issue->edge_index, 0u);
  EXPECT_NE(issue->what.find("out of range"), std::string::npos);

  DagSpec self_edge;
  self_edge.edges = {{0, 1}, {2, 2}};
  issue = self_edge.validate(3);
  ASSERT_TRUE(issue.has_value());
  EXPECT_EQ(issue->edge_index, 1u);
  EXPECT_NE(issue->what.find("repeats job 2"), std::string::npos);

  DagSpec duplicate;
  duplicate.edges = {{0, 1}, {1, 2}, {0, 1}};
  issue = duplicate.validate(3);
  ASSERT_TRUE(issue.has_value());
  EXPECT_EQ(issue->edge_index, 2u);  // the later copy is the offender
  EXPECT_NE(issue->what.find("duplicate dep 0 -> 1"), std::string::npos);

  DagSpec cycle;
  cycle.edges = {{0, 1}, {1, 2}, {2, 0}};
  issue = cycle.validate(3);
  ASSERT_TRUE(issue.has_value());
  EXPECT_NE(issue->what.find("cycle"), std::string::npos);
}

// --- Topological order ---------------------------------------------------

// The headline property: over 200 random seeded DAGs, each run under
// every registered policy, no successor ever starts before its last
// predecessor retires. Small graphs keep the 200 x |policies| matrix
// cheap.
TEST(DagDeterminism, TopologicalOrderHoldsAcrossSeedsAndPolicies) {
  World& w = world();
  const std::vector<std::string> policies =
      PolicyRegistry::instance().names();
  ASSERT_GE(policies.size(), 10u);

  const int kDags = 200;
  for (int i = 0; i < kDags; ++i) {
    Scenario s = w.base;
    s.name = "dag-prop";
    s.seed = 1000 + static_cast<std::uint64_t>(i);
    s.arrivals.count = 24;
    s.arrivals.mean_interarrival_cycles = 15000.0;
    Rng rng(s.seed);
    s.dag = random_dag(rng, s.arrivals.count);
    if (s.dag.empty()) s.dag.edges = {{0, 1}};
    for (const std::string& policy : policies) {
      s.policy = policy;
      check_topological_order(
          s, w.context,
          "dag seed " + std::to_string(s.seed) + ", policy " + policy);
      if (::testing::Test::HasFailure()) {
        FAIL() << "first violation at dag seed " << s.seed << ", policy "
               << policy;
      }
    }
  }
}

// --- Stream / batch bit-identity -----------------------------------------

// A streaming DAG run and a batch run() over the realized arrival order
// must produce the same event stream: same digest, same serialized
// result. This is the DAG extension of the repo's core determinism
// contract.
void check_stream_matches_batch(const Scenario& scenario,
                                const ScenarioContext& context,
                                const std::string& where) {
  ScenarioRun run(scenario, context);
  run.start();
  run.advance_until(std::numeric_limits<SimTime>::max());
  const SimulationResult streamed = run.finish();
  ASSERT_NE(run.dag(), nullptr) << where;
  const std::vector<JobArrival> realized = run.dag()->realized();
  ASSERT_EQ(realized.size(), scenario.arrivals.count) << where;
  for (std::size_t k = 1; k < realized.size(); ++k) {
    ASSERT_LE(realized[k - 1].arrival, realized[k].arrival)
        << where << ": realized order not sorted at " << k;
  }

  std::unique_ptr<SchedulerPolicy> policy =
      make_scenario_policy(scenario, context);
  MulticoreSimulator simulator(scenario.make_system(), context.suite(),
                               context.energy(), *policy,
                               scenario.discipline);
  StreamStats batch_stats(scenario.make_system().core_count());
  simulator.set_observer(&batch_stats);
  const SimulationResult batch = simulator.run(realized);

  EXPECT_EQ(run.stats().digest(), batch_stats.digest()) << where;
  EXPECT_EQ(result_text(streamed), result_text(batch)) << where;
}

TEST(DagDeterminism, StreamMatchesBatchReplayOfRealizedArrivals) {
  World& w = world();
  for (const std::string& policy :
       {std::string("optimal"), std::string("sjf"),
        std::string("cp-aware")}) {
    Scenario s = w.base;
    s.policy = policy;
    check_stream_matches_batch(s, w.context, "policy " + policy);
  }
}

TEST(DagDeterminism, StreamMatchesBatchUnderRealtimeAttributes) {
  World& w = world();
  Scenario s = w.base;
  s.policy = "cp-aware";
  RealtimeOptions rt;
  rt.slack_factor = 2.0;
  s.realtime = rt;
  check_stream_matches_batch(s, w.context, "realtime dag");
}

// --- Thread-count invariance ---------------------------------------------

TEST(DagDeterminism, OutputsInvariantAcrossThreadCounts) {
  World& w = world();
  auto run_at = [&](std::size_t threads) {
    ThreadPool::set_global_threads(threads);
    WindowedCollector collector(w.base.make_system().core_count(),
                                WindowedOptions{1'000'000, 0},
                                &w.context.suite());
    ScenarioOutcome outcome = run_scenario(w.base, w.context, &collector);
    collector.finalize();
    EXPECT_TRUE(outcome.dag.has_value());
    return windows_text(collector) + "digest " +
           std::to_string(outcome.stream.digest());
  };
  const std::string at1 = run_at(1);
  const std::string at3 = run_at(3);
  ThreadPool::set_global_threads(ThreadPool::default_threads());
  EXPECT_FALSE(at1.empty());
  EXPECT_EQ(at1, at3);
}

// --- cp-aware contract ---------------------------------------------------

// Without dep edges every cp_rank is zero, the stall-cost boost is the
// identity, and cp-aware must reproduce the proposed policy bit for bit.
TEST(CpAwarePolicy, MatchesProposedWhenEveryRankIsZero) {
  World& w = world();
  Scenario proposed = w.base;
  proposed.dag = DagSpec{};
  proposed.policy = "proposed";
  Scenario cp = proposed;
  cp.policy = "cp-aware";

  const ScenarioOutcome a = run_scenario(proposed, w.context);
  const ScenarioOutcome b = run_scenario(cp, w.context);
  EXPECT_EQ(a.stream.digest(), b.stream.digest());
  EXPECT_EQ(result_text(a.result), result_text(b.result));
  EXPECT_FALSE(a.dag.has_value());
  EXPECT_FALSE(b.dag.has_value());
}

// --- Release accounting --------------------------------------------------

TEST(DagStatsAccounting, FixedDiamondReportsExpectedNumbers) {
  World& w = world();
  Scenario s = w.base;
  s.policy = "optimal";
  s.arrivals.count = 6;
  // Diamond 0 -> {1, 2} -> 3 with a tail 3 -> 4; node 5 independent.
  s.dag.edges = {{0, 1}, {0, 2}, {1, 3}, {2, 3}, {3, 4}};

  WindowedCollector collector(s.make_system().core_count(),
                              WindowedOptions{1'000'000, 0},
                              &w.context.suite());
  const ScenarioOutcome outcome = run_scenario(s, w.context, &collector);
  collector.finalize();
  ASSERT_TRUE(outcome.dag.has_value());
  const DagStats& stats = *outcome.dag;
  EXPECT_EQ(stats.nodes, 6u);
  EXPECT_EQ(stats.edges, 5u);
  EXPECT_EQ(stats.releases, 4u);  // nodes 1..4; roots 0 and 5 are free
  EXPECT_EQ(stats.max_rank, 3u);  // 0 -> 1/2 -> 3 -> 4
  EXPECT_GE(stats.ready_peak, 1u);
  EXPECT_EQ(outcome.stream.dag_releases(), stats.releases);
  EXPECT_EQ(outcome.result.completed_jobs, 6u);

  // The window stream carries the same release count.
  std::uint64_t windowed_releases = 0;
  for (const WindowRecord& window : collector.windows()) {
    windowed_releases += window.dag_releases;
  }
  EXPECT_EQ(windowed_releases, stats.releases);
  EXPECT_NE(windows_text(collector).find("\"dag_releases\""),
            std::string::npos);
}

// --- Checkpoint kill-and-resume ------------------------------------------

// A DAG run killed at ANY stride boundary and resumed from the snapshot
// must rebuild the exact release frontier: digest, result, window
// stream (including the dag_* columns) and final DagStats all match the
// uninterrupted run.
TEST(DagDeterminism, CheckpointKillAtEveryBoundaryMatches) {
  World& w = world();
  CheckpointRunOptions options;
  options.window_cycles = 1'000'000;
  options.checkpoint_every = 1;
  std::vector<std::string> checkpoints;
  options.capture_checkpoints = &checkpoints;
  const CheckpointRunOutcome full =
      run_scenario_checkpointed(w.base, w.context, options);
  ASSERT_FALSE(full.halted);
  ASSERT_TRUE(full.dag.has_value());
  EXPECT_GE(full.dag->releases, 1u);
  ASSERT_GE(checkpoints.size(), 3u);

  const std::string ref_result = result_text(full.result);
  const std::string ref_windows = windows_text(full.windows);

  for (std::size_t k = 0; k < checkpoints.size(); ++k) {
    CheckpointRunOptions resume;
    resume.window_cycles = options.window_cycles;
    resume.checkpoint_every = options.checkpoint_every;
    resume.resume_text = checkpoints[k];
    const CheckpointRunOutcome resumed =
        run_scenario_checkpointed(w.base, w.context, resume);
    ASSERT_FALSE(resumed.halted);
    EXPECT_EQ(resumed.resumed_from, k + 1);
    EXPECT_EQ(resumed.stream.digest(), full.stream.digest())
        << "boundary " << k + 1;
    EXPECT_EQ(result_text(resumed.result), ref_result)
        << "boundary " << k + 1;
    EXPECT_EQ(windows_text(resumed.windows), ref_windows)
        << "boundary " << k + 1;
    ASSERT_TRUE(resumed.dag.has_value()) << "boundary " << k + 1;
    EXPECT_EQ(resumed.dag->releases, full.dag->releases)
        << "boundary " << k + 1;
    EXPECT_EQ(resumed.dag->ready_peak, full.dag->ready_peak)
        << "boundary " << k + 1;
    EXPECT_EQ(resumed.dag->release_latency_total,
              full.dag->release_latency_total)
        << "boundary " << k + 1;
    EXPECT_EQ(resumed.dag->cp_slack_total, full.dag->cp_slack_total)
        << "boundary " << k + 1;
  }
}

// A checkpoint from a DAG run must not resume the same scenario with the
// dep edges stripped (and vice versa).
TEST(DagCheckpoint, RejectsDagStateMismatch) {
  World& w = world();
  CheckpointRunOptions options;
  options.window_cycles = 1'000'000;
  options.checkpoint_every = 1;
  std::vector<std::string> checkpoints;
  options.capture_checkpoints = &checkpoints;
  const CheckpointRunOutcome full =
      run_scenario_checkpointed(w.base, w.context, options);
  ASSERT_FALSE(full.halted);
  ASSERT_GE(checkpoints.size(), 1u);

  Scenario stripped = w.base;
  stripped.dag = DagSpec{};
  CheckpointRunOptions resume;
  resume.window_cycles = options.window_cycles;
  resume.checkpoint_every = options.checkpoint_every;
  resume.resume_text = checkpoints[0];
  // The scenario fingerprint covers the dep edges, so the mismatch is
  // caught before the dag-state flag is even reached.
  EXPECT_THROW(run_scenario_checkpointed(stripped, w.context, resume),
               std::runtime_error);
}

// --- Golden scenario -----------------------------------------------------

// dag_smoke.scn runs a fan-out/fan-in pipeline under cp-aware dispatch;
// the checked-in window stream and deterministic run report pin the
// release telemetry (dag_* columns and the report's "dag" section) byte
// for byte.
TEST(DagGolden, SmokeScenarioWindowsAndReport) {
  const std::string dir =
      std::string(HETSCHED_SOURCE_DIR) + "/examples/scenarios/";
  std::ifstream in(dir + "dag_smoke.scn");
  ASSERT_TRUE(in) << "missing " << dir << "dag_smoke.scn";
  const Scenario scenario = Scenario::parse(in);
  ASSERT_FALSE(scenario.dag.empty());

  const ScenarioContext context(scenario);
  // Mirror the CLI scenario path: span collector ahead of the windowed
  // collector so the goldens pin the lat_* columns and latency section.
  JobSpanCollector spans(scenario.policy, 1'000'000);
  WindowedCollector collector(scenario.make_system().core_count(),
                              WindowedOptions{1'000'000, 0},
                              &context.suite());
  collector.set_span_source(&spans);
  FanoutObserver fanout({&spans, &collector});
  const ScenarioOutcome outcome = run_scenario(scenario, context, &fanout);
  spans.finalize();
  collector.finalize();
  EXPECT_EQ(outcome.stream.invariant_violations(), 0u);
  ASSERT_TRUE(outcome.dag.has_value());
  EXPECT_GE(outcome.dag->releases, 1u);

  const std::string windows = windows_text(collector);

  // The deterministic report the CLI would emit for this run (empty
  // phases, metrics from a local registry).
  RunReport report;
  report.command = "scenario";
  report.name = scenario.name;
  report.policy = scenario.policy;
  report.system = std::string(to_string(scenario.system));
  report.discipline = std::string(to_string(scenario.discipline));
  report.cores = scenario.make_system().core_count();
  report.seed = scenario.seed;
  report.jobs = scenario.arrivals.count;
  report.suite_key = suite_cache_key(scenario.suite, context.energy());
  report.completed_jobs = outcome.result.completed_jobs;
  report.makespan = outcome.result.makespan;
  report.total_energy_mj = outcome.result.total_energy().millijoules();
  report.stream_digest = outcome.stream.digest();
  attach_window_summary(report, collector, AnomalyConfig{});
  attach_latency_summary(report, {&spans});
  attach_dag_summary(report, *outcome.dag);
  MetricsRegistry local;
  record_scenario_metrics(local, scenario.name + ".", outcome);
  report.metrics_json = local.to_json();
  report.include_phases = false;
  const std::string report_json = run_report_to_json(report);
  EXPECT_NE(report_json.find("\"dag\": {"), std::string::npos);

  const std::string windows_path = dir + "dag_smoke.windows.jsonl";
  const std::string report_path = dir + "dag_smoke.report.json";
  if (std::getenv("HETSCHED_REGEN_GOLDEN") != nullptr) {
    std::ofstream windows_out(windows_path);
    windows_out << windows;
    ASSERT_TRUE(windows_out) << "cannot write " << windows_path;
    std::ofstream report_out(report_path);
    report_out << report_json;
    ASSERT_TRUE(report_out) << "cannot write " << report_path;
    GTEST_SKIP() << "dag goldens regenerated in " << dir;
  }

  auto slurp = [](const std::string& path) {
    std::ifstream golden(path);
    std::stringstream buffer;
    buffer << golden.rdbuf();
    return golden ? buffer.str() : std::string();
  };
  const std::string golden_windows = slurp(windows_path);
  ASSERT_FALSE(golden_windows.empty())
      << "missing golden " << windows_path
      << "; regenerate with HETSCHED_REGEN_GOLDEN=1";
  EXPECT_EQ(windows, golden_windows)
      << "dag window stream diverged; if intended, regenerate with "
         "HETSCHED_REGEN_GOLDEN=1 and commit";
  const std::string golden_report = slurp(report_path);
  ASSERT_FALSE(golden_report.empty())
      << "missing golden " << report_path
      << "; regenerate with HETSCHED_REGEN_GOLDEN=1";
  EXPECT_EQ(report_json, golden_report)
      << "dag run report diverged; if intended, regenerate with "
         "HETSCHED_REGEN_GOLDEN=1 and commit";
}

}  // namespace
}  // namespace hetsched
