// DispatchIndex unit suite: cluster/size-class construction against
// SystemConfig, incremental idle-set maintenance against naive linear
// scans, the (size, topology-epoch) clamp memo — including invalidation
// across fault transitions — and the O(1) DesignSpace::index_of against
// a linear search of the canonical space.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/dispatch_index.hpp"
#include "core/scheduler.hpp"
#include "core/system_config.hpp"
#include "util/rng.hpp"

namespace hetsched {
namespace {

std::vector<CoreRuntime> boot_cores(const SystemConfig& system) {
  std::vector<CoreRuntime> cores;
  cores.reserve(system.cores.size());
  for (const CoreSpec& spec : system.cores) {
    CoreRuntime core;
    core.spec = spec;
    core.current_config = spec.initial_config;
    cores.push_back(core);
  }
  return cores;
}

// Reference scans over the CoreRuntime array — the pre-index scheduler's
// selection semantics, restated naively.
std::size_t naive_first_idle(const std::vector<CoreRuntime>& cores) {
  for (std::size_t i = 0; i < cores.size(); ++i) {
    if (cores[i].online && !cores[i].busy) return i;
  }
  return DispatchIndex::npos;
}

std::size_t naive_first_idle_with_size(const std::vector<CoreRuntime>& cores,
                                       std::uint32_t size_bytes) {
  for (std::size_t i = 0; i < cores.size(); ++i) {
    if (cores[i].online && !cores[i].busy &&
        cores[i].spec.cache_size_bytes == size_bytes) {
      return i;
    }
  }
  return DispatchIndex::npos;
}

std::size_t naive_smallest_sufficient(const std::vector<CoreRuntime>& cores,
                                      std::uint32_t min_size) {
  std::size_t best = DispatchIndex::npos;
  std::uint32_t best_size = 0;
  for (std::size_t i = 0; i < cores.size(); ++i) {
    const std::uint32_t size = cores[i].spec.cache_size_bytes;
    if (!cores[i].online || cores[i].busy || size < min_size) continue;
    if (best == DispatchIndex::npos || size < best_size) {
      best = i;
      best_size = size;
    }
  }
  return best;
}

std::uint32_t naive_clamp_to_available(const std::vector<CoreRuntime>& cores,
                                       std::uint32_t size_bytes) {
  for (const bool online_only : {true, false}) {
    std::uint32_t best = 0;
    std::uint64_t best_distance = ~0ULL;
    for (const CoreRuntime& core : cores) {
      if (online_only && !core.online) continue;
      const std::uint32_t size = core.spec.cache_size_bytes;
      const std::uint64_t distance =
          size >= size_bytes ? size - size_bytes : size_bytes - size;
      if (distance < best_distance ||
          (distance == best_distance && size > best)) {
        best_distance = distance;
        best = size;
      }
    }
    if (best != 0) return best;
  }
  return size_bytes;
}

TEST(DispatchIndexStructure, SizeClassesMatchSystemConfig) {
  for (const std::size_t n : {2u, 4u, 16u, 64u, 129u, 256u}) {
    const SystemConfig system = SystemConfig::scaled_heterogeneous(n);
    const DispatchIndex index(system);

    // Size classes ascend and reproduce cores_with_size exactly.
    std::uint32_t previous = 0;
    std::size_t covered = 0;
    for (const DispatchIndex::SizeClass& sc : index.size_classes()) {
      EXPECT_GT(sc.cache_size_bytes, previous);
      previous = sc.cache_size_bytes;
      const std::vector<std::size_t> expected =
          system.cores_with_size(sc.cache_size_bytes);
      EXPECT_EQ(sc.members, expected) << n << " cores, size "
                                      << sc.cache_size_bytes;
      const auto span = index.cores_with_size(sc.cache_size_bytes);
      EXPECT_TRUE(std::equal(span.begin(), span.end(), expected.begin(),
                             expected.end()));
      EXPECT_EQ(sc.online_members, expected.size());
      covered += sc.members.size();
    }
    EXPECT_EQ(covered, n);

    // Clusters partition the machine and agree with the specs.
    std::vector<int> seen(n, 0);
    for (const DispatchIndex::Cluster& cluster : index.clusters()) {
      for (const std::size_t core : cluster.members) {
        ++seen[core];
        EXPECT_EQ(system.cores[core].cache_size_bytes,
                  cluster.cache_size_bytes);
        EXPECT_EQ(system.cores[core].can_profile, cluster.can_profile);
      }
    }
    for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(seen[i], 1) << i;

    EXPECT_EQ(index.cores_with_size(3072).size(), 0u);
    EXPECT_EQ(index.online_count(3072), 0u);
  }
}

TEST(DispatchIndexIdleSet, RandomTransitionsMatchNaiveScans) {
  const std::vector<std::uint32_t> probe_sizes = {2048, 4096, 8192, 3072};
  Rng rng(0xd15bacc5ULL);
  for (const std::size_t n : {4u, 64u, 131u, 256u}) {
    const SystemConfig system = SystemConfig::scaled_heterogeneous(n);
    std::vector<CoreRuntime> cores = boot_cores(system);
    DispatchIndex index(system);

    for (int step = 0; step < 2000; ++step) {
      const std::size_t core = rng.below(n);
      CoreRuntime& c = cores[core];
      switch (rng.below(4)) {
        case 0:  // dispatch
          if (c.online && !c.busy) {
            c.busy = true;
            index.mark_busy(core);
          }
          break;
        case 1:  // completion / preemption
          if (c.online && c.busy) {
            c.busy = false;
            index.mark_idle(core);
          }
          break;
        case 2:  // failure (busy or idle)
          if (c.online) {
            c.online = false;
            c.busy = false;
            index.mark_offline(core);
          }
          break;
        default:  // recovery: the core returns idle
          if (!c.online) {
            c.online = true;
            c.busy = false;
            index.mark_online(core);
          }
          break;
      }

      ASSERT_EQ(index.first_idle(), naive_first_idle(cores)) << "step "
                                                             << step;
      ASSERT_EQ(index.any_idle(),
                naive_first_idle(cores) != DispatchIndex::npos);
      for (const std::uint32_t size : probe_sizes) {
        ASSERT_EQ(index.first_idle_with_size(size),
                  naive_first_idle_with_size(cores, size))
            << "step " << step << " size " << size;
        ASSERT_EQ(index.first_idle_with_size_at_least(size),
                  naive_smallest_sufficient(cores, size))
            << "step " << step << " size " << size;
        ASSERT_EQ(index.clamp_to_available(size),
                  naive_clamp_to_available(cores, size))
            << "step " << step << " size " << size;
      }
    }

    // A from-scratch rebuild of the same core state answers identically
    // (the checkpoint-restore path).
    DispatchIndex rebuilt(system);
    rebuilt.rebuild(cores);
    EXPECT_EQ(rebuilt.first_idle(), index.first_idle());
    EXPECT_EQ(rebuilt.idle_count(), index.idle_count());
    for (const std::uint32_t size : probe_sizes) {
      EXPECT_EQ(rebuilt.first_idle_with_size(size),
                index.first_idle_with_size(size));
      EXPECT_EQ(rebuilt.online_count(size), index.online_count(size));
      EXPECT_EQ(rebuilt.clamp_to_available(size),
                index.clamp_to_available(size));
    }
  }
}

TEST(DispatchIndexClampCache, HitsUntilFaultTransitionInvalidates) {
  const SystemConfig system = SystemConfig::scaled_heterogeneous(4);
  DispatchIndex index(system);

  // First lookup computes, second is served from the epoch cache.
  EXPECT_EQ(index.clamp_to_available(4096), 4096u);
  const std::uint64_t hits_before = index.telemetry().clamp_hits;
  EXPECT_EQ(index.clamp_to_available(4096), 4096u);
  EXPECT_EQ(index.telemetry().clamp_hits, hits_before + 1);

  // Fault transition: the only 4 KB core goes down. The epoch bump must
  // invalidate the memo — the next lookup recomputes (no new hit) and
  // snaps to the nearest online size (2 KB is closer than 8 KB).
  const std::vector<std::size_t> quad_4k = system.cores_with_size(4096);
  ASSERT_EQ(quad_4k.size(), 1u);
  const std::uint64_t epoch_before = index.topology_epoch();
  index.mark_offline(quad_4k.front());
  EXPECT_GT(index.topology_epoch(), epoch_before);

  const std::uint64_t hits_after_fault = index.telemetry().clamp_hits;
  EXPECT_EQ(index.clamp_to_available(4096), 2048u);
  EXPECT_EQ(index.telemetry().clamp_hits, hits_after_fault);
  EXPECT_EQ(index.clamp_to_online(4096), 2048u);

  // Recovery invalidates again: the requested size is offered once more.
  index.mark_online(quad_4k.front());
  EXPECT_EQ(index.clamp_to_available(4096), 4096u);
  EXPECT_EQ(index.clamp_to_online(4096), 4096u);

  // Mass failure exercises the all-cores fallback: every core offline
  // still answers (nearest size over the full machine), and nothing
  // caches stale answers on the way back up.
  for (std::size_t i = 0; i < system.core_count(); ++i) {
    index.mark_offline(i);
  }
  EXPECT_EQ(index.clamp_to_available(4096), 4096u);
  for (std::size_t i = 0; i < system.core_count(); ++i) {
    index.mark_online(i);
  }
  EXPECT_EQ(index.clamp_to_available(8192), 8192u);
}

TEST(DesignSpaceIndexOf, MatchesLinearSearchOfCanonicalOrder) {
  const auto& space = DesignSpace::all();
  for (std::size_t i = 0; i < space.size(); ++i) {
    const auto idx = DesignSpace::index_of(space[i]);
    ASSERT_TRUE(idx.has_value()) << space[i].name();
    EXPECT_EQ(*idx, i) << space[i].name();
  }
  // Off-space shapes: legal-looking geometry outside the Table-1 points.
  EXPECT_FALSE(DesignSpace::index_of(CacheConfig{2048, 2, 16}).has_value());
  EXPECT_FALSE(DesignSpace::index_of(CacheConfig{4096, 4, 32}).has_value());
  EXPECT_FALSE(DesignSpace::index_of(CacheConfig{8192, 8, 64}).has_value());
  EXPECT_FALSE(DesignSpace::index_of(CacheConfig{1024, 1, 16}).has_value());
  EXPECT_FALSE(DesignSpace::index_of(CacheConfig{8192, 4, 128}).has_value());
  EXPECT_FALSE(DesignSpace::index_of(CacheConfig{0, 0, 0}).has_value());
}

}  // namespace
}  // namespace hetsched
