// Tests for src/energy: CACTI-style model monotonicity and the Figure-4
// energy model equations, swept across the Table-1 design space.
#include <gtest/gtest.h>

#include <bit>

#include "energy/energy_model.hpp"

namespace hetsched {
namespace {

TEST(CactiModelTest, TagAndIndexBitsAreConsistent) {
  const CactiModel cacti;
  for (const CacheConfig& config : DesignSpace::all()) {
    const std::uint32_t offset_bits =
        static_cast<std::uint32_t>(std::countr_zero(config.line_bytes));
    EXPECT_EQ(cacti.index_bits(config) + cacti.tag_bits(config) + offset_bits,
              32u)
        << config.name();
  }
}

TEST(CactiModelTest, ReadEnergyGrowsWithAssociativity) {
  const CactiModel cacti;
  EXPECT_LT(cacti.read_energy({8192, 1, 32}).value(),
            cacti.read_energy({8192, 2, 32}).value());
  EXPECT_LT(cacti.read_energy({8192, 2, 32}).value(),
            cacti.read_energy({8192, 4, 32}).value());
}

TEST(CactiModelTest, ReadEnergyGrowsWithLineSize) {
  const CactiModel cacti;
  EXPECT_LT(cacti.read_energy({4096, 1, 16}).value(),
            cacti.read_energy({4096, 1, 32}).value());
  EXPECT_LT(cacti.read_energy({4096, 1, 32}).value(),
            cacti.read_energy({4096, 1, 64}).value());
}

TEST(CactiModelTest, BaseConfigNearOneNanojoule) {
  const CactiModel cacti;
  const double base = cacti.read_energy(DesignSpace::base_config()).value();
  EXPECT_GT(base, 0.5);
  EXPECT_LT(base, 2.0);
  const double cheapest = cacti.read_energy({2048, 1, 16}).value();
  EXPECT_GT(base / cheapest, 3.0) << "meaningful spread across the space";
}

TEST(CactiModelTest, WriteCostsMoreThanReadAndFillScalesWithLine) {
  const CactiModel cacti;
  for (const CacheConfig& config : DesignSpace::all()) {
    EXPECT_GT(cacti.write_energy(config).value(),
              cacti.read_energy(config).value() * 0.99);
  }
  EXPECT_LT(cacti.fill_energy({8192, 4, 16}).value(),
            cacti.fill_energy({8192, 4, 64}).value());
}

TEST(EnergyModelTest, MissCyclesFollowFigure4Formula) {
  const EnergyModel model{CactiModel{}};
  const auto& p = model.params();
  for (const CacheConfig& config : DesignSpace::all()) {
    const Cycles beats = config.line_bytes / p.beat_bytes;
    EXPECT_EQ(model.stall_cycles_per_miss(config),
              p.miss_latency + beats * p.bandwidth_cycles_per_beat)
        << config.name();
    EXPECT_EQ(model.miss_cycles(config, 10),
              10 * model.stall_cycles_per_miss(config));
  }
  EXPECT_EQ(model.miss_cycles(DesignSpace::base_config(), 0), 0u);
}

TEST(EnergyModelTest, StaticPerCycleProportionalToSize) {
  const EnergyModel model{CactiModel{}};
  const double per_2kb = model.static_per_cycle({2048, 1, 16}).value();
  const double per_4kb = model.static_per_cycle({4096, 1, 16}).value();
  const double per_8kb = model.static_per_cycle({8192, 1, 16}).value();
  EXPECT_NEAR(per_4kb, 2.0 * per_2kb, 1e-12);
  EXPECT_NEAR(per_8kb, 4.0 * per_2kb, 1e-12);
  // E(per KB) = 10% of base dynamic energy / 8 KB.
  const double expected_8kb =
      model.cacti().read_energy(DesignSpace::base_config()).value() * 0.10;
  EXPECT_NEAR(per_8kb, expected_8kb, 1e-12);
}

TEST(EnergyModelTest, MissEnergyDominatesHitEnergy) {
  const EnergyModel model{CactiModel{}};
  for (const CacheConfig& config : DesignSpace::all()) {
    EXPECT_GT(model.miss_energy(config).value(),
              5.0 * model.hit_energy(config).value())
        << config.name();
  }
}

TEST(EnergyModelTest, IdleRateBelowActiveRate) {
  const EnergyModel model{CactiModel{}};
  for (const CacheConfig& config : DesignSpace::all()) {
    EXPECT_GT(model.idle_per_cycle(config).value(),
              model.static_per_cycle(config).value());
    EXPECT_LT(model.idle_per_cycle(config).value(),
              model.static_per_cycle(config).value() +
                  model.params().core_active_per_cycle.value() +
                  model.params().core_idle_per_cycle.value() + 1e-12);
  }
}

TEST(EnergyModelTest, EvaluateDecomposesPerFigure4) {
  const EnergyModel model{CactiModel{}};
  RawCounters counters;
  counters.loads = 6000;
  counters.stores = 2000;
  counters.int_ops = 10000;
  counters.branches = 2000;
  CacheSimResult sim;
  sim.config = CacheConfig{4096, 2, 32};
  sim.stats.accesses = 8000;
  sim.stats.hits = 7600;
  sim.stats.misses = 400;

  const EnergyBreakdown out = model.evaluate(counters, sim);
  EXPECT_EQ(out.miss_cycles, model.miss_cycles(sim.config, 400));
  EXPECT_EQ(out.total_cycles,
            counters.total_instructions() + out.miss_cycles);
  const double expected_dynamic =
      model.hit_energy(sim.config).value() * 7600 +
      model.miss_energy(sim.config).value() * 400;
  EXPECT_NEAR(out.dynamic_energy.value(), expected_dynamic, 1e-9);
  const double expected_static =
      model.static_per_cycle(sim.config).value() *
      static_cast<double>(out.total_cycles);
  EXPECT_NEAR(out.static_energy.value(), expected_static, 1e-6);
  EXPECT_NEAR(out.total().value(),
              out.static_energy.value() + out.dynamic_energy.value() +
                  out.cpu_energy.value(),
              1e-9);
}

TEST(EnergyModelTest, WritebackTermIsOptIn) {
  RawCounters counters;
  counters.loads = 1000;
  CacheSimResult sim;
  sim.config = DesignSpace::base_config();
  sim.stats.accesses = 1000;
  sim.stats.hits = 900;
  sim.stats.misses = 100;
  sim.stats.writebacks = 50;

  const EnergyModel fig4{CactiModel{}};
  EnergyModelParams extended_params;
  extended_params.include_writebacks = true;
  const EnergyModel extended{CactiModel{}, extended_params};

  const double without = fig4.evaluate(counters, sim).dynamic_energy.value();
  const double with =
      extended.evaluate(counters, sim).dynamic_energy.value();
  EXPECT_NEAR(with - without,
              extended.writeback_energy(sim.config).value() * 50, 1e-9);
}

TEST(EnergyModelTest, ZeroMissesMeansNoStallCyclesOrMissEnergy) {
  const EnergyModel model{CactiModel{}};
  RawCounters counters;
  counters.loads = 500;
  counters.int_ops = 500;
  CacheSimResult sim;
  sim.config = CacheConfig{2048, 1, 16};
  sim.stats.accesses = 500;
  sim.stats.hits = 500;
  const EnergyBreakdown out = model.evaluate(counters, sim);
  EXPECT_EQ(out.miss_cycles, 0u);
  EXPECT_EQ(out.total_cycles, counters.total_instructions());
  EXPECT_NEAR(out.dynamic_energy.value(),
              model.hit_energy(sim.config).value() * 500, 1e-9);
}

TEST(EnergyModelTest, CpiScalesInstructionCycles) {
  EnergyModelParams params;
  params.base_cpi = 1.5;
  const EnergyModel model{CactiModel{}, params};
  RawCounters counters;
  counters.int_ops = 1000;
  CacheSimResult sim;
  sim.config = DesignSpace::base_config();
  const EnergyBreakdown out = model.evaluate(counters, sim);
  EXPECT_EQ(out.total_cycles, 1500u);
}

// Property sweep: bigger caches cost more static power per cycle, and the
// energy of a fixed workload is strictly positive in every configuration.
class EnergySweep : public ::testing::TestWithParam<CacheConfig> {};

TEST_P(EnergySweep, AllQuantitiesPositive) {
  const EnergyModel model{CactiModel{}};
  const CacheConfig& config = GetParam();
  EXPECT_GT(model.hit_energy(config).value(), 0.0);
  EXPECT_GT(model.miss_energy(config).value(), 0.0);
  EXPECT_GT(model.static_per_cycle(config).value(), 0.0);
  EXPECT_GT(model.idle_per_cycle(config).value(), 0.0);
  EXPECT_GT(model.writeback_energy(config).value(), 0.0);
  EXPECT_GT(model.stall_cycles_per_miss(config), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Table1, EnergySweep, ::testing::ValuesIn(DesignSpace::all()),
    [](const ::testing::TestParamInfo<CacheConfig>& info) {
      return info.param.name();
    });

}  // namespace
}  // namespace hetsched
