// Tests for the extended kernel pack and the include_extended suite
// option.
#include <gtest/gtest.h>

#include <set>

#include "workload/characterization.hpp"

namespace hetsched {
namespace {

TEST(ExtendedKernelsTest, PackShapeAndNames) {
  const auto extended = make_extended_kernels(0.5);
  EXPECT_EQ(extended.size(), 8u);
  const auto standard = make_standard_kernels(0.5);
  std::set<std::string> names;
  for (const auto& k : standard) names.insert(k->name());
  for (const auto& k : extended) {
    EXPECT_TRUE(names.insert(k->name()).second)
        << "extended kernel name collides: " << k->name();
  }
}

class ExtendedKernelParamTest
    : public ::testing::TestWithParam<std::size_t> {
 protected:
  static const std::vector<std::unique_ptr<Kernel>>& kernels() {
    static const auto k = make_extended_kernels(0.5);
    return k;
  }
  const Kernel& kernel() const { return *kernels()[GetParam()]; }
};

TEST_P(ExtendedKernelParamTest, ProducesValidDeterministicTrace) {
  const KernelExecution a = execute(kernel(), 11);
  const KernelExecution b = execute(kernel(), 11);
  EXPECT_GT(a.trace.size(), 100u);
  EXPECT_EQ(a.trace, b.trace);
  EXPECT_GT(a.counters.total_instructions(), a.trace.size());
  for (const MemRef& ref : a.trace) {
    ASSERT_GE(ref.address, 0x1000u);
    ASSERT_LE(ref.address + ref.size, 0x1000u + a.footprint_bytes);
  }
}

TEST_P(ExtendedKernelParamTest, CountersMatchTrace) {
  const KernelExecution exec = execute(kernel(), 12);
  std::uint64_t loads = 0, stores = 0;
  for (const MemRef& ref : exec.trace) {
    (ref.is_write ? stores : loads)++;
  }
  EXPECT_EQ(loads, exec.counters.loads);
  EXPECT_EQ(stores, exec.counters.stores);
  EXPECT_LE(exec.counters.taken_branches, exec.counters.branches);
}

INSTANTIATE_TEST_SUITE_P(
    AllExtended, ExtendedKernelParamTest,
    ::testing::Range<std::size_t>(0, 8),
    [](const ::testing::TestParamInfo<std::size_t>& info) {
      static const auto kernels = make_extended_kernels(0.5);
      return kernels[info.param]->name();
    });

TEST(ExtendedSuiteTest, IncludeExtendedGrowsTheSuite) {
  SuiteOptions options;
  options.kernel_scale = 0.25;
  options.variants_per_kernel = 1;
  const EnergyModel model{CactiModel{}};

  const CharacterizedSuite standard =
      CharacterizedSuite::build(model, options);
  options.include_extended = true;
  const CharacterizedSuite extended =
      CharacterizedSuite::build(model, options);

  EXPECT_EQ(standard.size(), 19u);
  EXPECT_EQ(extended.size(), 27u);
  // The standard prefix characterises identically.
  for (std::size_t i = 0; i < standard.size(); ++i) {
    EXPECT_EQ(standard.benchmark(i).instance.name,
              extended.benchmark(i).instance.name);
    EXPECT_EQ(standard.benchmark(i).best_overall().config,
              extended.benchmark(i).best_overall().config);
  }
  // Every extended benchmark has a full characterisation too.
  for (std::size_t i = standard.size(); i < extended.size(); ++i) {
    EXPECT_EQ(extended.benchmark(i).per_config.size(), 18u);
    EXPECT_GT(extended.benchmark(i).best_overall().energy.total().value(),
              0.0);
  }
}

TEST(ExtendedSuiteTest, MakeSuiteKernelsHonoursOption) {
  SuiteOptions options;
  options.kernel_scale = 0.25;
  EXPECT_EQ(make_suite_kernels(options).size(), 19u);
  options.include_extended = true;
  EXPECT_EQ(make_suite_kernels(options).size(), 27u);
}

}  // namespace
}  // namespace hetsched
