// Characterisation fast path: thread pool, single-pass multi-config
// cache simulation, and the persistent profile cache.
//
// The load-bearing guarantees under test:
//   * simulate_trace_multi is bit-identical to per-config simulate_trace
//     for every Table-1 configuration on real kernel traces.
//   * CharacterizedSuite::build is bit-identical for every thread count
//     and to the serial reference path.
//   * A snapshot round trip reproduces the suite exactly; stale keys and
//     corrupted bodies are rejected, never silently served.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "cache/cache.hpp"
#include "cache/multi_sim.hpp"
#include "energy/cacti.hpp"
#include "energy/energy_model.hpp"
#include "trace/kernel.hpp"
#include "util/thread_pool.hpp"
#include "workload/characterization.hpp"
#include "workload/profile_cache.hpp"

namespace hetsched {
namespace {

// ---------------------------------------------------------------------
// ThreadPool

TEST(ThreadPoolTest, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.thread_count(), 4u);

  constexpr std::size_t kCount = 1000;
  std::vector<std::atomic<int>> touched(kCount);
  pool.parallel_for(kCount, [&](std::size_t i) { ++touched[i]; });
  for (std::size_t i = 0; i < kCount; ++i) {
    EXPECT_EQ(touched[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, SingleThreadPoolRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.thread_count(), 1u);
  std::size_t sum = 0;
  // No synchronisation needed: a 1-thread pool runs on the caller.
  pool.parallel_for(100, [&](std::size_t i) { sum += i; });
  EXPECT_EQ(sum, 4950u);
}

TEST(ThreadPoolTest, ZeroCountIsANoop) {
  ThreadPool pool(3);
  bool ran = false;
  pool.parallel_for(0, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPoolTest, NestedParallelForRunsInlineWithoutDeadlock) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> touched(64);
  pool.parallel_for(8, [&](std::size_t outer) {
    pool.parallel_for(8, [&](std::size_t inner) {
      ++touched[outer * 8 + inner];
    });
  });
  for (std::size_t i = 0; i < touched.size(); ++i) {
    EXPECT_EQ(touched[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, PropagatesExceptionsAndStaysUsable) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(100,
                                 [&](std::size_t i) {
                                   if (i == 37) {
                                     throw std::runtime_error("boom");
                                   }
                                 }),
               std::runtime_error);

  // The pool must survive a throwing job.
  std::atomic<std::size_t> count{0};
  pool.parallel_for(50, [&](std::size_t) { ++count; });
  EXPECT_EQ(count.load(), 50u);
}

TEST(ThreadPoolTest, ReusableAcrossManyJobs) {
  ThreadPool pool(4);
  for (int round = 0; round < 50; ++round) {
    std::atomic<std::uint64_t> sum{0};
    pool.parallel_for(64, [&](std::size_t i) { sum += i; });
    EXPECT_EQ(sum.load(), 2016u) << "round " << round;
  }
}

// ---------------------------------------------------------------------
// LineAddressSet

TEST(LineAddressSetTest, MatchesSetSemantics) {
  LineAddressSet set;
  EXPECT_EQ(set.size(), 0u);
  EXPECT_FALSE(set.contains(0));
  EXPECT_TRUE(set.insert(0));
  EXPECT_FALSE(set.insert(0));
  EXPECT_TRUE(set.contains(0));
  // Spread across words, including a large address forcing growth.
  EXPECT_TRUE(set.insert(63));
  EXPECT_TRUE(set.insert(64));
  EXPECT_TRUE(set.insert(1u << 20));
  EXPECT_FALSE(set.insert(1u << 20));
  EXPECT_EQ(set.size(), 4u);
  EXPECT_FALSE(set.contains(65));
  set.clear();
  EXPECT_EQ(set.size(), 0u);
  EXPECT_FALSE(set.contains(63));
  EXPECT_TRUE(set.insert(63));
}

// ---------------------------------------------------------------------
// Single-pass multi-configuration simulation

void expect_stats_identical(const CacheStats& multi, const CacheStats& ref,
                            const std::string& label) {
  EXPECT_EQ(multi.accesses, ref.accesses) << label;
  EXPECT_EQ(multi.hits, ref.hits) << label;
  EXPECT_EQ(multi.misses, ref.misses) << label;
  EXPECT_EQ(multi.read_misses, ref.read_misses) << label;
  EXPECT_EQ(multi.write_misses, ref.write_misses) << label;
  EXPECT_EQ(multi.compulsory_misses, ref.compulsory_misses) << label;
  EXPECT_EQ(multi.evictions, ref.evictions) << label;
  EXPECT_EQ(multi.writebacks, ref.writebacks) << label;
  EXPECT_EQ(multi.writethroughs, ref.writethroughs) << label;
  EXPECT_EQ(multi.prefetch_fills, ref.prefetch_fills) << label;
}

TEST(MultiSimTest, SupportsOnlyTheLruWriteBackDefaults) {
  EXPECT_TRUE(multi_sim_supported(CacheOptions{}));
  CacheOptions fifo;
  fifo.replacement = ReplacementPolicy::kFifo;
  EXPECT_FALSE(multi_sim_supported(fifo));
  CacheOptions random;
  random.replacement = ReplacementPolicy::kRandom;
  EXPECT_FALSE(multi_sim_supported(random));
  CacheOptions wt;
  wt.write = WritePolicy::kWriteThroughNoAllocate;
  EXPECT_FALSE(multi_sim_supported(wt));
  CacheOptions pf;
  pf.next_line_prefetch = true;
  EXPECT_FALSE(multi_sim_supported(pf));
}

TEST(MultiSimTest, BitIdenticalToReferenceCacheOnKernelTraces) {
  const std::vector<CacheConfig>& configs = DesignSpace::all();
  ASSERT_EQ(configs.size(), 18u);

  // A cross-domain sample of real kernels at reduced scale.
  const std::vector<std::unique_ptr<Kernel>> kernels =
      make_standard_kernels(0.25);
  ASSERT_GE(kernels.size(), 6u);
  const std::size_t kernel_ids[] = {0, 3, 7, 11, 14, kernels.size() - 1};

  for (std::size_t k : kernel_ids) {
    const KernelExecution exec = execute(*kernels[k], 42 + k);
    ASSERT_FALSE(exec.trace.empty());
    const std::vector<CacheSimResult> multi =
        simulate_trace_multi(exec.trace, configs);
    ASSERT_EQ(multi.size(), configs.size());
    for (std::size_t c = 0; c < configs.size(); ++c) {
      const CacheSimResult ref = simulate_trace(exec.trace, configs[c]);
      expect_stats_identical(multi[c].stats, ref.stats,
                             kernels[k]->name() + "/" + configs[c].name());
    }
  }
}

TEST(MultiSimTest, HandlesArbitraryConfigSubsetsAndOrder) {
  const std::vector<std::unique_ptr<Kernel>> kernels =
      make_standard_kernels(0.25);
  const KernelExecution exec = execute(*kernels[2], 7);

  // Reversed design space plus duplicates: result i must still match
  // configs[i] exactly.
  std::vector<CacheConfig> configs(DesignSpace::all().rbegin(),
                                   DesignSpace::all().rend());
  configs.push_back(configs.front());
  const std::vector<CacheSimResult> multi =
      simulate_trace_multi(exec.trace, configs);
  ASSERT_EQ(multi.size(), configs.size());
  for (std::size_t c = 0; c < configs.size(); ++c) {
    const CacheSimResult ref = simulate_trace(exec.trace, configs[c]);
    expect_stats_identical(multi[c].stats, ref.stats, configs[c].name());
  }
}

// ---------------------------------------------------------------------
// Suite determinism across build paths and thread counts

SuiteOptions small_suite_options() {
  SuiteOptions options;
  options.kernel_scale = 0.25;
  options.variants_per_kernel = 2;
  return options;
}

void expect_profiles_identical(const BenchmarkProfile& a,
                               const BenchmarkProfile& b) {
  EXPECT_EQ(a.instance.name, b.instance.name);
  EXPECT_EQ(a.instance.kernel_index, b.instance.kernel_index);
  EXPECT_EQ(a.instance.data_seed, b.instance.data_seed);
  EXPECT_EQ(a.instance.domain, b.instance.domain);
  EXPECT_EQ(a.counters.loads, b.counters.loads);
  EXPECT_EQ(a.counters.stores, b.counters.stores);
  EXPECT_EQ(a.counters.branches, b.counters.branches);
  EXPECT_EQ(a.counters.taken_branches, b.counters.taken_branches);
  EXPECT_EQ(a.counters.int_ops, b.counters.int_ops);
  EXPECT_EQ(a.counters.fp_ops, b.counters.fp_ops);
  EXPECT_EQ(a.footprint_bytes, b.footprint_bytes);

  const auto sa = a.base_statistics.to_vector();
  const auto sb = b.base_statistics.to_vector();
  for (std::size_t i = 0; i < sa.size(); ++i) {
    // Bit-identical, not approximately equal.
    EXPECT_EQ(sa[i], sb[i]) << a.instance.name << " statistic " << i;
  }

  ASSERT_EQ(a.per_config.size(), b.per_config.size());
  for (std::size_t c = 0; c < a.per_config.size(); ++c) {
    const ConfigProfile& pa = a.per_config[c];
    const ConfigProfile& pb = b.per_config[c];
    EXPECT_EQ(pa.config.name(), pb.config.name());
    expect_stats_identical(pa.cache, pb.cache,
                           a.instance.name + "/" + pa.config.name());
    EXPECT_EQ(pa.energy.miss_cycles, pb.energy.miss_cycles);
    EXPECT_EQ(pa.energy.total_cycles, pb.energy.total_cycles);
    EXPECT_EQ(pa.energy.static_energy.value(), pb.energy.static_energy.value());
    EXPECT_EQ(pa.energy.dynamic_energy.value(),
              pb.energy.dynamic_energy.value());
    EXPECT_EQ(pa.energy.cpu_energy.value(), pb.energy.cpu_energy.value());
  }
}

void expect_suites_identical(const CharacterizedSuite& a,
                             const CharacterizedSuite& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    expect_profiles_identical(a.benchmark(i), b.benchmark(i));
  }
}

TEST(SuiteDeterminismTest, FastPathMatchesSerialReferenceForAnyThreadCount) {
  const EnergyModel model{CactiModel{}, EnergyModelParams{}};
  const SuiteOptions options = small_suite_options();

  const CharacterizedSuite reference =
      CharacterizedSuite::build_reference(model, options);

  ThreadPool one(1);
  ThreadPool four(4);
  const CharacterizedSuite serial =
      CharacterizedSuite::build(model, options, one);
  const CharacterizedSuite pooled =
      CharacterizedSuite::build(model, options, four);

  expect_suites_identical(reference, serial);
  expect_suites_identical(serial, pooled);
}

// ---------------------------------------------------------------------
// Profile cache snapshots

TEST(ProfileCacheTest, SnapshotRoundTripIsBitIdentical) {
  const EnergyModel model{CactiModel{}, EnergyModelParams{}};
  const SuiteOptions options = small_suite_options();
  const CharacterizedSuite suite = CharacterizedSuite::build(model, options);
  const std::uint64_t key = suite_cache_key(options, model);

  std::stringstream stream;
  save_suite_snapshot(stream, suite, key);
  const CharacterizedSuite loaded = load_suite_snapshot(stream, key);
  expect_suites_identical(suite, loaded);
}

TEST(ProfileCacheTest, KeySeparatesCharacterisationInputs) {
  const EnergyModel model{CactiModel{}, EnergyModelParams{}};
  const SuiteOptions options = small_suite_options();
  const std::uint64_t key = suite_cache_key(options, model);

  SuiteOptions other_variants = options;
  other_variants.variants_per_kernel = 3;
  EXPECT_NE(suite_cache_key(other_variants, model), key);

  SuiteOptions other_scale = options;
  other_scale.kernel_scale = 0.5;
  EXPECT_NE(suite_cache_key(other_scale, model), key);

  SuiteOptions other_seed = options;
  other_seed.seed_base = 2000;
  EXPECT_NE(suite_cache_key(other_seed, model), key);

  EnergyModelParams hot_params;
  hot_params.static_fraction = 0.2;
  const EnergyModel hot{CactiModel{}, hot_params};
  EXPECT_NE(suite_cache_key(options, hot), key);
}

TEST(ProfileCacheTest, RejectsStaleKey) {
  const EnergyModel model{CactiModel{}, EnergyModelParams{}};
  const SuiteOptions options = small_suite_options();
  const CharacterizedSuite suite = CharacterizedSuite::build(model, options);
  const std::uint64_t key = suite_cache_key(options, model);

  std::stringstream stream;
  save_suite_snapshot(stream, suite, key);
  EXPECT_THROW(load_suite_snapshot(stream, key ^ 1), std::runtime_error);
}

TEST(ProfileCacheTest, RejectsCorruptedBody) {
  const EnergyModel model{CactiModel{}, EnergyModelParams{}};
  const SuiteOptions options = small_suite_options();
  const CharacterizedSuite suite = CharacterizedSuite::build(model, options);
  const std::uint64_t key = suite_cache_key(options, model);

  std::stringstream clean;
  save_suite_snapshot(clean, suite, key);
  std::string body = clean.str();
  // Flip one digit somewhere in the middle of the payload.
  const std::size_t pos = body.size() / 2;
  body[pos] = body[pos] == '7' ? '8' : '7';

  std::istringstream corrupted(body);
  EXPECT_THROW(load_suite_snapshot(corrupted, key), std::runtime_error);
}

TEST(ProfileCacheTest, RejectsGarbageInput) {
  std::istringstream garbage("not a snapshot at all\n");
  EXPECT_THROW(load_suite_snapshot(garbage, 1), std::runtime_error);
  std::istringstream empty("");
  EXPECT_THROW(load_suite_snapshot(empty, 1), std::runtime_error);
}

}  // namespace
}  // namespace hetsched
