// Fault-injection framework tests: plan parsing, injector determinism,
// core failure/recovery inside the simulator, watchdog semantics,
// degraded-mode reconfiguration and the policies' prediction sanity
// guard.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <sstream>
#include <vector>

#include "core/policies.hpp"
#include "core/schedule_log.hpp"
#include "core/simulator.hpp"
#include "experiment/experiment.hpp"
#include "fault/fault_injector.hpp"
#include "obs/windowed.hpp"

namespace hetsched {
namespace {

struct Fixture {
  EnergyModel energy{CactiModel{}};
  CharacterizedSuite suite;
  std::vector<JobArrival> arrivals;

  explicit Fixture(std::size_t jobs = 200, double mean_gap = 60000.0) {
    SuiteOptions options;
    options.kernel_scale = 0.25;
    options.variants_per_kernel = 1;
    suite = CharacterizedSuite::build(energy, options);
    Rng rng(99);
    ArrivalOptions arrival_options;
    arrival_options.count = jobs;
    arrival_options.mean_interarrival_cycles = mean_gap;
    arrivals =
        generate_arrivals(suite.scheduling_ids(), arrival_options, rng);
  }
};

const Fixture& fixture() {
  static const Fixture f;
  return f;
}

// A predictor whose answer is never a legal design-space size; the
// policies' sanity guard must catch it and fall back to the base size.
class GarbagePredictor final : public SizePredictor {
 public:
  std::uint32_t predict(std::size_t,
                        const ExecutionStatistics&) const override {
    return 1234567;
  }
};

// ---------------- FaultPlan ----------------

TEST(FaultPlanTest, DefaultPlanIsEmptyAndValid) {
  FaultPlan plan;
  EXPECT_TRUE(plan.empty());
  EXPECT_NO_THROW(plan.validate());
}

TEST(FaultPlanTest, ValidateRejectsBadRates) {
  FaultPlan plan;
  plan.reconfig_failure_rate = 1.5;
  EXPECT_THROW(plan.validate(), std::invalid_argument);
  plan.reconfig_failure_rate = 0.5;
  plan.stuck_job_rate = -0.1;
  EXPECT_THROW(plan.validate(), std::invalid_argument);
  plan.stuck_job_rate = 0.0;
  plan.counter_noise_stddev = std::nan("");
  EXPECT_THROW(plan.validate(), std::invalid_argument);
}

TEST(FaultPlanTest, SaveParseRoundTrip) {
  FaultPlan plan;
  plan.seed = 77;
  plan.core_events.push_back({120000, 2, true});
  plan.core_events.push_back({450000, 2, false});
  plan.reconfig_failure_rate = 0.01;
  plan.stuck_job_rate = 0.005;
  plan.counter_corruption_rate = 0.02;
  plan.counter_mode = FaultPlan::CounterMode::kNaN;
  plan.counter_noise_stddev = 0.25;

  std::stringstream stream;
  plan.save(stream);
  const FaultPlan loaded = FaultPlan::parse(stream);
  EXPECT_EQ(loaded.seed, plan.seed);
  EXPECT_EQ(loaded.core_events, plan.core_events);
  EXPECT_DOUBLE_EQ(loaded.reconfig_failure_rate,
                   plan.reconfig_failure_rate);
  EXPECT_DOUBLE_EQ(loaded.stuck_job_rate, plan.stuck_job_rate);
  EXPECT_DOUBLE_EQ(loaded.counter_corruption_rate,
                   plan.counter_corruption_rate);
  EXPECT_EQ(loaded.counter_mode, plan.counter_mode);
  EXPECT_DOUBLE_EQ(loaded.counter_noise_stddev, plan.counter_noise_stddev);
}

TEST(FaultPlanTest, ParseAcceptsCommentsAndReportsLineNumbers) {
  std::stringstream good(
      "# a comment\n"
      "\n"
      "seed 3\n"
      "fail 1 5000   # inline comment\n"
      "stuck-rate 0.5\n");
  const FaultPlan plan = FaultPlan::parse(good);
  EXPECT_EQ(plan.seed, 3u);
  ASSERT_EQ(plan.core_events.size(), 1u);
  EXPECT_DOUBLE_EQ(plan.stuck_job_rate, 0.5);

  for (const char* bad :
       {"bogus 1\n", "stuck-rate 1.5\n", "stuck-rate x\n", "fail 1\n",
        "seed 1 extra\n", "counter-mode sideways\n", "counter-noise -1\n"}) {
    std::stringstream in(std::string("seed 1\n") + bad);
    try {
      FaultPlan::parse(in);
      FAIL() << "accepted: " << bad;
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos)
          << e.what();
    }
  }
}

TEST(FaultPlanTest, UniformSetsEveryRate) {
  const FaultPlan plan = FaultPlan::uniform(0.02, 9);
  EXPECT_EQ(plan.seed, 9u);
  EXPECT_DOUBLE_EQ(plan.reconfig_failure_rate, 0.02);
  EXPECT_DOUBLE_EQ(plan.stuck_job_rate, 0.02);
  EXPECT_DOUBLE_EQ(plan.counter_corruption_rate, 0.02);
  EXPECT_THROW(FaultPlan::uniform(2.0, 9), std::invalid_argument);
}

// ---------------- FaultInjector ----------------

TEST(FaultInjectorTest, DecisionsAreDeterministicAndOrderIndependent) {
  const FaultPlan plan = FaultPlan::uniform(0.3, 1234);
  FaultInjector forward(plan);
  FaultInjector backward(plan);

  // Same (core, job, attempt) triples queried in opposite orders must
  // agree: decisions are pure hashes, not draws from shared state.
  constexpr int kQueries = 64;
  std::vector<bool> a(kQueries), b(kQueries);
  for (int i = 0; i < kQueries; ++i) {
    a[static_cast<std::size_t>(i)] =
        forward.reconfig_fails(static_cast<std::size_t>(i % 4),
                               static_cast<std::uint64_t>(i), 0);
  }
  for (int i = kQueries - 1; i >= 0; --i) {
    b[static_cast<std::size_t>(i)] =
        backward.reconfig_fails(static_cast<std::size_t>(i % 4),
                                static_cast<std::uint64_t>(i), 0);
  }
  EXPECT_EQ(a, b);
  EXPECT_GT(std::count(a.begin(), a.end(), true), 0);
  EXPECT_GT(std::count(a.begin(), a.end(), false), 0);
}

TEST(FaultInjectorTest, SameSeedSameDecisionsDifferentSeedDiffers) {
  const FaultPlan a_plan = FaultPlan::uniform(0.5, 42);
  FaultPlan b_plan = a_plan;
  b_plan.seed = 43;
  FaultInjector a1(a_plan), a2(a_plan), b(b_plan);

  int differences = 0;
  for (std::uint64_t job = 0; job < 256; ++job) {
    EXPECT_EQ(a1.reconfig_fails(job % 4, job, 1),
              a2.reconfig_fails(job % 4, job, 1));
    if (a1.reconfig_fails(job % 4, job, 1) != b.reconfig_fails(job % 4, job, 1)) {
      ++differences;
    }
  }
  EXPECT_GT(differences, 0) << "seed must influence the decisions";
}

TEST(FaultInjectorTest, JobHangsAtMostOncePerJob) {
  FaultPlan plan;
  plan.stuck_job_rate = 1.0;
  FaultInjector injector(plan);
  EXPECT_TRUE(injector.job_hangs(7));
  EXPECT_FALSE(injector.job_hangs(7)) << "a job wedges at most once";
  EXPECT_TRUE(injector.job_hangs(8));
}

TEST(FaultInjectorTest, CoreEventsConsumedInTimeOrder) {
  FaultPlan plan;
  plan.core_events.push_back({300, 1, false});
  plan.core_events.push_back({100, 0, true});
  plan.core_events.push_back({100, 1, true});
  FaultInjector injector(plan);

  ASSERT_TRUE(injector.next_core_event_time().has_value());
  EXPECT_EQ(*injector.next_core_event_time(), 100u);
  const auto first = injector.take_core_events(100);
  ASSERT_EQ(first.size(), 2u);
  EXPECT_EQ(first[0].core, 0u);
  EXPECT_EQ(first[1].core, 1u);
  EXPECT_EQ(*injector.next_core_event_time(), 300u);
  EXPECT_TRUE(injector.take_core_events(200).empty());
  EXPECT_EQ(injector.take_core_events(1000).size(), 1u);
  EXPECT_FALSE(injector.next_core_event_time().has_value());
}

TEST(FaultInjectorTest, CounterCorruptionModes) {
  ExecutionStatistics reference;
  reference.total_instructions = 1000;
  reference.cycles = 5000;
  reference.loads = 400;
  reference.l1_miss_rate = 0.125;

  auto corrupted = [&](FaultPlan::CounterMode mode) {
    FaultPlan plan;
    plan.counter_corruption_rate = 1.0;
    plan.counter_mode = mode;
    FaultInjector injector(plan);
    ExecutionStatistics stats = reference;
    EXPECT_TRUE(injector.corrupt_statistics(3, stats));
    return stats;
  };

  const auto gaussian = corrupted(FaultPlan::CounterMode::kGaussian);
  EXPECT_NE(gaussian.cycles, reference.cycles);
  EXPECT_TRUE(std::isfinite(gaussian.cycles));

  const auto poisoned = corrupted(FaultPlan::CounterMode::kNaN);
  int nans = 0;
  for (double v : poisoned.to_vector()) nans += std::isnan(v) ? 1 : 0;
  EXPECT_EQ(nans, 1) << "nan mode poisons exactly one statistic";

  const auto zeroed = corrupted(FaultPlan::CounterMode::kZero);
  for (double v : zeroed.to_vector()) EXPECT_EQ(v, 0.0);

  const auto saturated = corrupted(FaultPlan::CounterMode::kSaturate);
  for (double v : saturated.to_vector()) EXPECT_EQ(v, 1e30);

  // Zero rate never corrupts.
  FaultInjector quiet((FaultPlan()));
  ExecutionStatistics stats = reference;
  EXPECT_FALSE(quiet.corrupt_statistics(3, stats));
  EXPECT_EQ(stats.cycles, reference.cycles);
}

// ---------------- simulator integration ----------------

TEST(FaultSimulatorTest, ZeroFaultPlanIsBitIdenticalToNoInjector) {
  const Fixture& f = fixture();
  auto run = [&](bool attach) {
    OptimalPolicy policy;
    MulticoreSimulator sim(SystemConfig::paper_quadcore(), f.suite,
                           f.energy, policy);
    FaultInjector injector((FaultPlan()));
    if (attach) sim.set_fault_injector(&injector);
    return sim.run(f.arrivals);
  };
  const SimulationResult bare = run(false);
  const SimulationResult with = run(true);
  EXPECT_EQ(bare.makespan, with.makespan);
  EXPECT_EQ(bare.total_energy().value(), with.total_energy().value());
  EXPECT_EQ(bare.idle_energy.value(), with.idle_energy.value());
  EXPECT_EQ(bare.dynamic_energy.value(), with.dynamic_energy.value());
  EXPECT_EQ(bare.stall_events, with.stall_events);
  EXPECT_EQ(bare.reconfigurations, with.reconfigurations);
  EXPECT_EQ(bare.completed_jobs, with.completed_jobs);
  EXPECT_FALSE(with.faults.any());
}

TEST(FaultSimulatorTest, CoreFailureSettlesProRataAndRequeues) {
  const Fixture& f = fixture();

  // First run fault-free to find a moment core 0 is mid-execution.
  ScheduleLog reference;
  {
    BasePolicy policy;
    MulticoreSimulator sim(SystemConfig::fixed_base(4), f.suite, f.energy,
                           policy);
    sim.set_observer(&reference);
    sim.run(f.arrivals);
  }
  const ScheduledSlice* victim = nullptr;
  for (const ScheduledSlice& slice : reference.slices()) {
    if (slice.core == 0 && slice.end - slice.start > 1000) {
      victim = &slice;
      break;
    }
  }
  ASSERT_NE(victim, nullptr);
  const SimTime fail_at = victim->start + (victim->end - victim->start) / 2;

  FaultPlan plan;
  plan.core_events.push_back({fail_at, 0, true});
  plan.core_events.push_back({fail_at + 2000000, 0, false});

  BasePolicy policy;
  MulticoreSimulator sim(SystemConfig::fixed_base(4), f.suite, f.energy,
                         policy);
  FaultInjector injector(plan);
  ScheduleLog log;
  sim.set_observer(&log);
  sim.set_fault_injector(&injector);
  const SimulationResult result = sim.run(f.arrivals);

  EXPECT_EQ(result.completed_jobs, f.arrivals.size())
      << "the settled job must be re-queued and finish elsewhere";
  EXPECT_EQ(result.faults.core_failures, 1u);
  EXPECT_EQ(result.faults.core_recoveries, 1u);
  EXPECT_GE(result.faults.jobs_requeued, 1u);
  EXPECT_TRUE(log.well_formed());

  // The interrupted execution appears as a partial slice ending exactly
  // at the failure cycle.
  bool found_partial = false;
  for (const ScheduledSlice& slice : log.slices()) {
    if (slice.core == 0 && slice.end == fail_at && !slice.completed) {
      found_partial = true;
      EXPECT_EQ(slice.job_id, victim->job_id);
    }
  }
  EXPECT_TRUE(found_partial) << "pro-rata settlement slice missing";

  // The fault log records the failure and the recovery.
  ASSERT_EQ(log.faults().size(), 2u);
  EXPECT_EQ(log.faults()[0].kind, FaultRecord::Kind::kCoreFailure);
  EXPECT_EQ(log.faults()[0].time, fail_at);
  EXPECT_EQ(log.faults()[1].kind, FaultRecord::Kind::kCoreRecovery);

  std::ostringstream csv;
  log.write_fault_csv(csv);
  EXPECT_NE(csv.str().find("core-failure"), std::string::npos);
}

TEST(FaultSimulatorTest, OfflineCoreRunsNothingUntilRecovery) {
  const Fixture& f = fixture();
  FaultPlan plan;
  plan.core_events.push_back({0, 2, true});  // core 2 down from the start

  BasePolicy policy;
  MulticoreSimulator sim(SystemConfig::fixed_base(4), f.suite, f.energy,
                         policy);
  FaultInjector injector(plan);
  sim.set_fault_injector(&injector);
  const SimulationResult result = sim.run(f.arrivals);

  EXPECT_EQ(result.completed_jobs, f.arrivals.size());
  EXPECT_EQ(result.per_core[2].executions, 0u)
      << "policies must never dispatch to an offline core";
  EXPECT_EQ(result.faults.core_failures, 1u);
}

TEST(FaultSimulatorTest, WatchdogFiresExactlyOncePerStuckJob) {
  const Fixture f(60);
  FaultPlan plan;
  plan.stuck_job_rate = 1.0;  // every job wedges on its first dispatch

  BasePolicy policy;
  MulticoreSimulator sim(SystemConfig::fixed_base(4), f.suite, f.energy,
                         policy);
  FaultInjector injector(plan);
  sim.set_fault_injector(&injector);
  const SimulationResult result = sim.run(f.arrivals);

  EXPECT_EQ(result.completed_jobs, f.arrivals.size());
  EXPECT_EQ(result.faults.watchdog_fires, f.arrivals.size())
      << "each job hangs once, the watchdog clears each exactly once";
  EXPECT_EQ(result.faults.jobs_requeued, f.arrivals.size());
}

TEST(FaultSimulatorTest, ReconfigFailuresDegradeToStaleConfig) {
  const Fixture& f = fixture();
  FaultPlan plan;
  plan.reconfig_failure_rate = 1.0;  // no reconfiguration ever succeeds

  OracleSizePredictor predictor(f.suite);
  ProposedPolicy policy(predictor);
  MulticoreSimulator sim(SystemConfig::paper_quadcore(), f.suite, f.energy,
                         policy);
  FaultInjector injector(plan);
  sim.set_fault_injector(&injector);
  const SimulationResult result = sim.run(f.arrivals);

  EXPECT_EQ(result.completed_jobs, f.arrivals.size())
      << "jobs must degrade to the stale configuration, not stall forever";
  EXPECT_EQ(result.reconfigurations, 0u);
  EXPECT_GT(result.faults.reconfig_failures, 0u);
  EXPECT_GT(result.faults.reconfig_retries, 0u);
  EXPECT_GT(result.faults.degraded_executions, 0u);
}

TEST(FaultSimulatorTest, PredictionSanityGuardFallsBackToBase) {
  const Fixture& f = fixture();
  GarbagePredictor predictor;
  ProposedPolicy policy(predictor);
  MulticoreSimulator sim(SystemConfig::paper_quadcore(), f.suite, f.energy,
                         policy);
  // The guard is part of the policies, not the injector: it must work
  // even in a fault-free run (e.g. against a corrupted snapshot).
  const SimulationResult result = sim.run(f.arrivals);

  EXPECT_EQ(result.completed_jobs, f.arrivals.size());
  std::set<std::size_t> distinct;
  for (const JobArrival& a : f.arrivals) distinct.insert(a.benchmark_id);
  EXPECT_EQ(result.faults.prediction_fallbacks, distinct.size());
  for (std::size_t id : distinct) {
    ASSERT_TRUE(sim.table().entry(id).predicted_best_size_bytes.has_value());
    EXPECT_EQ(*sim.table().entry(id).predicted_best_size_bytes,
              DesignSpace::base_config().size_bytes)
        << "garbage predictions must fall back to the base size";
  }
}

TEST(FaultSimulatorTest, NaNCountersTriggerPredictionFallback) {
  const Fixture& f = fixture();
  FaultPlan plan;
  plan.counter_corruption_rate = 1.0;
  plan.counter_mode = FaultPlan::CounterMode::kNaN;

  OracleSizePredictor predictor(f.suite);
  ProposedPolicy policy(predictor);
  MulticoreSimulator sim(SystemConfig::paper_quadcore(), f.suite, f.energy,
                         policy);
  FaultInjector injector(plan);
  sim.set_fault_injector(&injector);
  const SimulationResult result = sim.run(f.arrivals);

  EXPECT_EQ(result.completed_jobs, f.arrivals.size());
  std::set<std::size_t> distinct;
  for (const JobArrival& a : f.arrivals) distinct.insert(a.benchmark_id);
  EXPECT_EQ(result.faults.counter_corruptions, distinct.size());
  EXPECT_EQ(result.faults.prediction_fallbacks, distinct.size())
      << "non-finite profiled statistics must trip the sanity guard";
}

TEST(FaultSimulatorTest, AllCoresDownForeverIsReportedAsDeadlock) {
  const Fixture f(20);
  FaultPlan plan;
  for (std::size_t core = 0; core < 4; ++core) {
    plan.core_events.push_back({0, core, true});  // nobody ever recovers
  }
  BasePolicy policy;
  MulticoreSimulator sim(SystemConfig::fixed_base(4), f.suite, f.energy,
                         policy);
  FaultInjector injector(plan);
  sim.set_fault_injector(&injector);
  EXPECT_THROW(sim.run(f.arrivals), std::runtime_error);
}

TEST(FaultSimulatorTest, FaultRunsAreDeterministic) {
  const Fixture& f = fixture();
  auto run_once = [&] {
    FaultPlan plan = FaultPlan::uniform(0.05, 7);
    plan.core_events.push_back({500000, 1, true});
    plan.core_events.push_back({2500000, 1, false});
    OracleSizePredictor predictor(f.suite);
    ProposedPolicy policy(predictor);
    MulticoreSimulator sim(SystemConfig::paper_quadcore(), f.suite,
                           f.energy, policy);
    FaultInjector injector(plan);
    sim.set_fault_injector(&injector);
    return sim.run(f.arrivals);
  };
  const SimulationResult a = run_once();
  const SimulationResult b = run_once();
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.total_energy().value(), b.total_energy().value());
  EXPECT_EQ(a.faults.injected, b.faults.injected);
  EXPECT_EQ(a.faults.watchdog_fires, b.faults.watchdog_fires);
  EXPECT_EQ(a.faults.counter_corruptions, b.faults.counter_corruptions);
}

// The windowed migration detector must keep policy-driven moves and
// fault-recovery re-dispatch in separate counters: a watchdog or core
// failure re-queuing a job is recovery, not a scheduling choice.
TEST(FaultTelemetry, MigrationCounterSplitsPolicyFromFaultRecovery) {
  WindowedCollector collector(3, WindowedOptions{100000, 0});

  // Policy migration: a preempted slice re-dispatched on another core.
  ScheduledSlice preempted;
  preempted.job_id = 1;
  preempted.core = 0;
  preempted.start = 0;
  preempted.end = 50;
  preempted.completed = false;
  collector.on_slice(preempted);
  DispatchEvent moved;
  moved.time = 60;
  moved.core = 1;
  moved.job_id = 1;
  collector.on_dispatch(moved);

  // Fault recovery: core 2 fails under job 2, which restarts elsewhere.
  FaultRecord failure;
  failure.time = 70;
  failure.core = 2;
  failure.job_id = 2;
  failure.kind = FaultRecord::Kind::kCoreFailure;
  collector.on_fault(failure);
  DispatchEvent recovered;
  recovered.time = 80;
  recovered.core = 0;
  recovered.job_id = 2;
  collector.on_dispatch(recovered);

  // A hung victim cleared by preemption is fault recovery too.
  PreemptEvent hung;
  hung.time = 90;
  hung.core = 1;
  hung.job_id = 3;
  hung.was_hung = true;
  collector.on_preempt(hung);
  DispatchEvent after_hang;
  after_hang.time = 95;
  after_hang.core = 2;
  after_hang.job_id = 3;
  collector.on_dispatch(after_hang);

  // Same-core restart after a watchdog fire: no migration of either kind.
  FaultRecord watchdog;
  watchdog.time = 100;
  watchdog.core = 1;
  watchdog.job_id = 4;
  watchdog.kind = FaultRecord::Kind::kWatchdogFire;
  collector.on_fault(watchdog);
  DispatchEvent same_core;
  same_core.time = 105;
  same_core.core = 1;
  same_core.job_id = 4;
  collector.on_dispatch(same_core);

  collector.finalize();
  ASSERT_EQ(collector.windows().size(), 1u);
  const WindowRecord& w = collector.windows()[0];
  EXPECT_EQ(w.migrations, 1u);
  EXPECT_EQ(w.fault_migrations, 2u);
  EXPECT_EQ(w.dispatches, 4u);
}

TEST(FaultRecordTest, KindNames) {
  EXPECT_EQ(to_string(FaultRecord::Kind::kCoreFailure), "core-failure");
  EXPECT_EQ(to_string(FaultRecord::Kind::kCoreRecovery), "core-recovery");
  EXPECT_EQ(to_string(FaultRecord::Kind::kReconfigFailure),
            "reconfig-failure");
  EXPECT_EQ(to_string(FaultRecord::Kind::kCounterCorruption),
            "counter-corruption");
  EXPECT_EQ(to_string(FaultRecord::Kind::kWatchdogFire), "watchdog-fire");
}

}  // namespace
}  // namespace hetsched
