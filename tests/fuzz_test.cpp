// Differential fuzzing (ctest label: fuzz).
//
// Randomised (trace, configuration) pairs drive the single-pass
// multi-configuration cache engine against the reference Cache replay,
// and randomised schedules check ScheduleLog's busy-cycle reconstruction
// against a naive recount and the simulator's own accounting. Every
// iteration derives from a printed seed: a failure message carries the
// seed, and HETSCHED_FUZZ_SEED=<seed> re-runs the whole suite from that
// base for deterministic reproduction (CI pins it for the sanitizer
// job).
#include <gtest/gtest.h>

#include <cstdlib>
#include <limits>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "cache/multi_sim.hpp"
#include "core/schedule_log.hpp"
#include "experiment/experiment.hpp"
#include "scenario/scenario_runner.hpp"
#include "util/rng.hpp"

namespace hetsched {
namespace {

std::uint64_t fuzz_base_seed() {
  if (const char* env = std::getenv("HETSCHED_FUZZ_SEED")) {
    return std::strtoull(env, nullptr, 10);
  }
  return 0x5eedf0220ULL;
}

// Kernel-ish trace: mostly short strided runs with occasional random
// jumps, plus unaligned widths so accesses can straddle line boundaries.
MemTrace random_trace(Rng& rng) {
  const std::size_t length = 64 + rng.below(960);
  const std::uint32_t window = 1u << (10 + rng.below(6));  // 1K..32K bytes
  MemTrace trace;
  trace.reserve(length);
  std::uint32_t addr = 0x1000;
  for (std::size_t i = 0; i < length; ++i) {
    if (rng.bernoulli(0.3)) {
      addr = 0x1000 + static_cast<std::uint32_t>(rng.below(window));
    } else {
      addr += static_cast<std::uint32_t>(1u << rng.below(5));  // 1..16 B
    }
    MemRef ref;
    ref.address = addr;
    ref.size = static_cast<std::uint8_t>(1u << rng.below(4));  // 1/2/4/8
    ref.is_write = rng.bernoulli(0.3);
    trace.push_back(ref);
  }
  return trace;
}

// Any valid power-of-two geometry, not just the Table-1 points: size
// 1..16 KB, line 8..128 B, associativity 1..8 bounded so at least one
// set exists.
CacheConfig random_config(Rng& rng) {
  for (;;) {
    CacheConfig config;
    config.size_bytes = 1024u << rng.below(5);
    config.line_bytes = 8u << rng.below(5);
    config.associativity = 1u << rng.below(4);
    if (config.valid()) return config;
  }
}

TEST(FuzzDifferential, MultiSimMatchesReferenceReplay) {
  const std::uint64_t base = fuzz_base_seed();
  const int kPairs = 500;
  for (int pair = 0; pair < kPairs; ++pair) {
    const std::uint64_t seed = base + static_cast<std::uint64_t>(pair);
    Rng rng(seed);
    const MemTrace trace = random_trace(rng);
    std::vector<CacheConfig> configs(1 + rng.below(4));
    for (CacheConfig& config : configs) config = random_config(rng);

    const std::vector<CacheSimResult> multi =
        simulate_trace_multi(trace, configs);
    ASSERT_EQ(multi.size(), configs.size());
    for (std::size_t i = 0; i < configs.size(); ++i) {
      const CacheSimResult reference = simulate_trace(trace, configs[i]);
      const CacheStats& a = multi[i].stats;
      const CacheStats& b = reference.stats;
      const std::string where = "seed " + std::to_string(seed) +
                                ", config " + configs[i].name() +
                                " (reproduce with HETSCHED_FUZZ_SEED=" +
                                std::to_string(seed) + ")";
      ASSERT_EQ(multi[i].config, configs[i]) << where;
      EXPECT_EQ(a.accesses, b.accesses) << where;
      EXPECT_EQ(a.hits, b.hits) << where;
      EXPECT_EQ(a.misses, b.misses) << where;
      EXPECT_EQ(a.read_misses, b.read_misses) << where;
      EXPECT_EQ(a.write_misses, b.write_misses) << where;
      EXPECT_EQ(a.compulsory_misses, b.compulsory_misses) << where;
      EXPECT_EQ(a.evictions, b.evictions) << where;
      EXPECT_EQ(a.writebacks, b.writebacks) << where;
      EXPECT_EQ(a.writethroughs, b.writethroughs) << where;
      EXPECT_EQ(a.prefetch_fills, b.prefetch_fills) << where;
      if (::testing::Test::HasFailure()) {
        FAIL() << "first divergence at " << where;
      }
    }
  }
}

// One scaled-down experiment shared by the schedule fuzz cases.
const Experiment& fuzz_experiment() {
  static const Experiment* experiment = [] {
    ExperimentOptions options = ExperimentOptions::quick();
    options.suite.variants_per_kernel = 1;
    options.arrivals.count = 200;
    options.seed = fuzz_base_seed();
    return new Experiment(options);
  }();
  return *experiment;
}

void check_busy_recount(const SystemRun& run, const ScheduleLog& log) {
  EXPECT_TRUE(log.well_formed()) << run.name;

  const std::size_t cores = run.result.per_core.size();
  const std::vector<Cycles> reconstructed = log.busy_cycles(cores);
  std::vector<Cycles> naive(cores, 0);
  for (const ScheduledSlice& slice : log.slices()) {
    ASSERT_LT(slice.core, cores) << run.name;
    ASSERT_LE(slice.start, slice.end) << run.name;
    naive[slice.core] += slice.end - slice.start;
  }
  ASSERT_EQ(reconstructed.size(), cores) << run.name;
  for (std::size_t core = 0; core < cores; ++core) {
    EXPECT_EQ(reconstructed[core], naive[core])
        << run.name << " core " << core;
    EXPECT_EQ(naive[core], run.result.per_core[core].busy_cycles)
        << run.name << " core " << core;
  }
}

TEST(FuzzSchedule, BusyCyclesMatchNaiveRecount) {
  const Experiment& experiment = fuzz_experiment();
  {
    ScheduleLog log;
    check_busy_recount(experiment.run_base(&log), log);
  }
  {
    ScheduleLog log;
    check_busy_recount(experiment.run_optimal(&log), log);
  }
  {
    ScheduleLog log;
    check_busy_recount(experiment.run_proposed(&log), log);
  }
}

// --- Dispatch-index differential ----------------------------------------
//
// The hierarchical dispatch index must be a pure speedup: for ANY
// machine size, policy and fault schedule, the indexed decision paths
// pick the same core as the reference linear scans on every single
// decision. Rather than comparing decisions one at a time, each random
// scenario runs twice — indexed and with set_naive_dispatch(true) — and
// the full outputs must agree byte for byte: one divergent pick anywhere
// would cascade into a different schedule, digest and result.

ScenarioOutcome run_outcome(const Scenario& scenario,
                            const ScenarioContext& context, bool naive) {
  ScenarioRun run(scenario, context);
  run.simulator().set_naive_dispatch(naive);
  run.start();
  run.advance_until(std::numeric_limits<SimTime>::max());
  SimulationResult result = run.finish();
  return ScenarioOutcome{std::move(result), std::move(run.stats()),
                         run.simulator().dispatch_telemetry(),
                         std::nullopt, std::nullopt};
}

std::string result_text(const SimulationResult& result) {
  std::ostringstream out;
  save_simulation_result(out, result);
  return out.str();
}

TEST(FuzzDispatch, IndexedSelectionMatchesNaiveScanBitForBit) {
  const std::uint64_t base = fuzz_base_seed();

  // One context (suite + trained predictor) serves every iteration: the
  // context depends on suite/predictor parameters only, never on the
  // machine shape, policy or fault plan being fuzzed.
  Scenario family;
  family.name = "fuzz-dispatch";
  family.system = Scenario::SystemKind::kScaledHeterogeneous;
  family.policy = "proposed";  // forces predictor training
  family.suite.kernel_scale = 0.25;
  family.suite.variants_per_kernel = 1;
  family.predictor_ensemble = 5;
  family.predictor_max_epochs = 120;
  family.seed = base;
  const ScenarioContext context(family);

  const std::vector<std::string> policies = {
      "base", "optimal", "energy-centric", "proposed", "realtime"};

  const int kIterations = 25;
  for (int iteration = 0; iteration < kIterations; ++iteration) {
    const std::uint64_t seed = base + 1000 + iteration;
    Rng rng(seed);

    Scenario scenario = family;
    scenario.seed = seed;
    // Random machine: 4..256 cores of the scaled heterogeneous mix.
    scenario.cores = 4 + rng.below(253);
    scenario.policy = policies[rng.below(policies.size())];
    if (scenario.policy == "realtime") {
      scenario.discipline = QueueDiscipline::kEdf;
      RealtimeOptions rt;
      rt.slack_factor = 1.5 + rng.below(3) * 0.5;
      rt.priority_levels = 1 + static_cast<int>(rng.below(3));
      scenario.realtime = rt;
    }
    scenario.arrivals.count = 150 + rng.below(150);
    scenario.arrivals.mean_interarrival_cycles =
        20000.0 * 16.0 / static_cast<double>(scenario.cores);

    // Random fault schedule: every failure gets a recovery, so the
    // stream always drains; rates exercise the degraded-mode paths.
    const std::size_t failures = rng.below(4);
    for (std::size_t f = 0; f < failures; ++f) {
      const std::size_t core = rng.below(scenario.cores);
      const SimTime fail_at = 100'000 + rng.below(4'000'000);
      const SimTime recover_at = fail_at + 200'000 + rng.below(2'000'000);
      scenario.faults.core_events.push_back({fail_at, core, true});
      scenario.faults.core_events.push_back({recover_at, core, false});
    }
    if (failures > 0) {
      scenario.faults.seed = seed;
      scenario.faults.reconfig_failure_rate = rng.below(2) ? 0.05 : 0.0;
      scenario.faults.stuck_job_rate = rng.below(2) ? 0.05 : 0.0;
    }

    const std::string where =
        "seed " + std::to_string(seed) + ", " +
        std::to_string(scenario.cores) + " cores, policy " +
        scenario.policy + ", " + std::to_string(failures) +
        " fault pairs (reproduce with HETSCHED_FUZZ_SEED=" +
        std::to_string(base) + ")";

    const ScenarioOutcome indexed = run_outcome(scenario, context, false);
    const ScenarioOutcome naive = run_outcome(scenario, context, true);

    ASSERT_EQ(indexed.stream.digest(), naive.stream.digest()) << where;
    ASSERT_EQ(result_text(indexed.result), result_text(naive.result))
        << where;
    ASSERT_EQ(indexed.stream.slices(), naive.stream.slices()) << where;
    // Same decision count either way; only the scan mechanics differ.
    ASSERT_EQ(indexed.dispatch.decisions, naive.dispatch.decisions)
        << where;
  }
}

// --- DAG spec differential -----------------------------------------------

// Naive O(V*E) reference for DagSpec::validate: quadratic duplicate
// scan, per-edge range/self checks, and Bellman-style relaxation for
// cycle detection (a cycle exists iff edge relaxation still changes
// anything after V rounds).
bool naive_dag_valid(const std::vector<DagEdge>& edges,
                     std::size_t nodes) {
  for (const DagEdge& e : edges) {
    if (e.from >= nodes || e.to >= nodes || e.from == e.to) return false;
  }
  for (std::size_t i = 0; i < edges.size(); ++i) {
    for (std::size_t j = i + 1; j < edges.size(); ++j) {
      if (edges[i].from == edges[j].from && edges[i].to == edges[j].to) {
        return false;
      }
    }
  }
  // Longest-path relaxation: acyclic graphs converge within `nodes`
  // rounds; one more productive round means a cycle.
  std::vector<std::uint64_t> dist(nodes, 0);
  for (std::size_t round = 0; round <= nodes; ++round) {
    bool changed = false;
    for (const DagEdge& e : edges) {
      if (dist[e.from] + 1 > dist[e.to]) {
        dist[e.to] = dist[e.from] + 1;
        changed = true;
      }
    }
    if (!changed) return true;
  }
  return false;
}

// Naive longest-path-to-sink ranks by relaxation over the reversed
// edges; requires a valid DAG.
std::vector<std::uint32_t> naive_dag_ranks(
    const std::vector<DagEdge>& edges, std::size_t nodes) {
  std::vector<std::uint32_t> rank(nodes, 0);
  for (std::size_t round = 0; round < nodes; ++round) {
    bool changed = false;
    for (const DagEdge& e : edges) {
      if (rank[e.to] + 1 > rank[e.from]) {
        rank[e.from] = rank[e.to] + 1;
        changed = true;
      }
    }
    if (!changed) break;
  }
  return rank;
}

// Random graphs across three regimes — layered-acyclic, layered plus an
// injected back edge, and unconstrained (range/self/duplicate errors
// included) — must get the same accept/reject verdict from
// DagSpec::validate and the naive validator, and identical ranks when
// accepted.
TEST(FuzzDag, ValidateAndRanksMatchNaiveReference) {
  const std::uint64_t base = fuzz_base_seed();
  const int kGraphs = 400;
  for (int graph = 0; graph < kGraphs; ++graph) {
    const std::uint64_t seed = base + 5000 + graph;
    Rng rng(seed);
    const std::size_t nodes = 2 + rng.below(40);
    const std::size_t layers = 2 + rng.below(5);
    std::vector<std::size_t> layer_of(nodes);
    for (std::size_t v = 0; v < nodes; ++v) layer_of[v] = rng.below(layers);

    DagSpec spec;
    const std::size_t attempts = rng.below(3 * nodes + 1);
    const std::uint64_t regime = rng.below(3);
    for (std::size_t k = 0; k < attempts; ++k) {
      DagEdge e;
      if (regime == 2) {
        // Unconstrained: occasionally out of range, self or duplicate.
        e.from = rng.below(nodes + 2);
        e.to = rng.below(nodes + 2);
      } else {
        // Layered: lower layer -> strictly higher layer, acyclic.
        e.from = rng.below(nodes);
        e.to = rng.below(nodes);
        if (layer_of[e.from] == layer_of[e.to]) continue;
        if (layer_of[e.from] > layer_of[e.to]) std::swap(e.from, e.to);
        bool duplicate = false;
        for (const DagEdge& seen : spec.edges) {
          duplicate |= seen.from == e.from && seen.to == e.to;
        }
        if (duplicate) continue;
      }
      spec.edges.push_back(e);
    }
    if (regime == 1 && !spec.edges.empty()) {
      // Close a random existing edge into a 2-cycle through a fresh
      // reverse edge (guaranteed invalid).
      const DagEdge& forward = spec.edges[rng.below(spec.edges.size())];
      spec.edges.push_back({forward.to, forward.from});
    }

    const std::string where =
        "seed " + std::to_string(seed) + ", " + std::to_string(nodes) +
        " nodes, " + std::to_string(spec.edges.size()) +
        " edges, regime " + std::to_string(regime) +
        " (reproduce with HETSCHED_FUZZ_SEED=" + std::to_string(base) +
        ")";
    const bool naive_ok = naive_dag_valid(spec.edges, nodes);
    const auto issue = spec.validate(nodes);
    ASSERT_EQ(!issue.has_value(), naive_ok)
        << where
        << (issue.has_value() ? "; validate said: " + issue->what
                              : "; validate accepted");
    if (naive_ok) {
      ASSERT_EQ(spec.ranks(nodes), naive_dag_ranks(spec.edges, nodes))
          << where;
    } else {
      ASSERT_LT(issue->edge_index, spec.edges.size()) << where;
    }
  }
}

}  // namespace
}  // namespace hetsched
