// Differential fuzzing (ctest label: fuzz).
//
// Randomised (trace, configuration) pairs drive the single-pass
// multi-configuration cache engine against the reference Cache replay,
// and randomised schedules check ScheduleLog's busy-cycle reconstruction
// against a naive recount and the simulator's own accounting. Every
// iteration derives from a printed seed: a failure message carries the
// seed, and HETSCHED_FUZZ_SEED=<seed> re-runs the whole suite from that
// base for deterministic reproduction (CI pins it for the sanitizer
// job).
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "cache/multi_sim.hpp"
#include "core/schedule_log.hpp"
#include "experiment/experiment.hpp"
#include "util/rng.hpp"

namespace hetsched {
namespace {

std::uint64_t fuzz_base_seed() {
  if (const char* env = std::getenv("HETSCHED_FUZZ_SEED")) {
    return std::strtoull(env, nullptr, 10);
  }
  return 0x5eedf0220ULL;
}

// Kernel-ish trace: mostly short strided runs with occasional random
// jumps, plus unaligned widths so accesses can straddle line boundaries.
MemTrace random_trace(Rng& rng) {
  const std::size_t length = 64 + rng.below(960);
  const std::uint32_t window = 1u << (10 + rng.below(6));  // 1K..32K bytes
  MemTrace trace;
  trace.reserve(length);
  std::uint32_t addr = 0x1000;
  for (std::size_t i = 0; i < length; ++i) {
    if (rng.bernoulli(0.3)) {
      addr = 0x1000 + static_cast<std::uint32_t>(rng.below(window));
    } else {
      addr += static_cast<std::uint32_t>(1u << rng.below(5));  // 1..16 B
    }
    MemRef ref;
    ref.address = addr;
    ref.size = static_cast<std::uint8_t>(1u << rng.below(4));  // 1/2/4/8
    ref.is_write = rng.bernoulli(0.3);
    trace.push_back(ref);
  }
  return trace;
}

// Any valid power-of-two geometry, not just the Table-1 points: size
// 1..16 KB, line 8..128 B, associativity 1..8 bounded so at least one
// set exists.
CacheConfig random_config(Rng& rng) {
  for (;;) {
    CacheConfig config;
    config.size_bytes = 1024u << rng.below(5);
    config.line_bytes = 8u << rng.below(5);
    config.associativity = 1u << rng.below(4);
    if (config.valid()) return config;
  }
}

TEST(FuzzDifferential, MultiSimMatchesReferenceReplay) {
  const std::uint64_t base = fuzz_base_seed();
  const int kPairs = 500;
  for (int pair = 0; pair < kPairs; ++pair) {
    const std::uint64_t seed = base + static_cast<std::uint64_t>(pair);
    Rng rng(seed);
    const MemTrace trace = random_trace(rng);
    std::vector<CacheConfig> configs(1 + rng.below(4));
    for (CacheConfig& config : configs) config = random_config(rng);

    const std::vector<CacheSimResult> multi =
        simulate_trace_multi(trace, configs);
    ASSERT_EQ(multi.size(), configs.size());
    for (std::size_t i = 0; i < configs.size(); ++i) {
      const CacheSimResult reference = simulate_trace(trace, configs[i]);
      const CacheStats& a = multi[i].stats;
      const CacheStats& b = reference.stats;
      const std::string where = "seed " + std::to_string(seed) +
                                ", config " + configs[i].name() +
                                " (reproduce with HETSCHED_FUZZ_SEED=" +
                                std::to_string(seed) + ")";
      ASSERT_EQ(multi[i].config, configs[i]) << where;
      EXPECT_EQ(a.accesses, b.accesses) << where;
      EXPECT_EQ(a.hits, b.hits) << where;
      EXPECT_EQ(a.misses, b.misses) << where;
      EXPECT_EQ(a.read_misses, b.read_misses) << where;
      EXPECT_EQ(a.write_misses, b.write_misses) << where;
      EXPECT_EQ(a.compulsory_misses, b.compulsory_misses) << where;
      EXPECT_EQ(a.evictions, b.evictions) << where;
      EXPECT_EQ(a.writebacks, b.writebacks) << where;
      EXPECT_EQ(a.writethroughs, b.writethroughs) << where;
      EXPECT_EQ(a.prefetch_fills, b.prefetch_fills) << where;
      if (::testing::Test::HasFailure()) {
        FAIL() << "first divergence at " << where;
      }
    }
  }
}

// One scaled-down experiment shared by the schedule fuzz cases.
const Experiment& fuzz_experiment() {
  static const Experiment* experiment = [] {
    ExperimentOptions options = ExperimentOptions::quick();
    options.suite.variants_per_kernel = 1;
    options.arrivals.count = 200;
    options.seed = fuzz_base_seed();
    return new Experiment(options);
  }();
  return *experiment;
}

void check_busy_recount(const SystemRun& run, const ScheduleLog& log) {
  EXPECT_TRUE(log.well_formed()) << run.name;

  const std::size_t cores = run.result.per_core.size();
  const std::vector<Cycles> reconstructed = log.busy_cycles(cores);
  std::vector<Cycles> naive(cores, 0);
  for (const ScheduledSlice& slice : log.slices()) {
    ASSERT_LT(slice.core, cores) << run.name;
    ASSERT_LE(slice.start, slice.end) << run.name;
    naive[slice.core] += slice.end - slice.start;
  }
  ASSERT_EQ(reconstructed.size(), cores) << run.name;
  for (std::size_t core = 0; core < cores; ++core) {
    EXPECT_EQ(reconstructed[core], naive[core])
        << run.name << " core " << core;
    EXPECT_EQ(naive[core], run.result.per_core[core].busy_cycles)
        << run.name << " core " << core;
  }
}

TEST(FuzzSchedule, BusyCyclesMatchNaiveRecount) {
  const Experiment& experiment = fuzz_experiment();
  {
    ScheduleLog log;
    check_busy_recount(experiment.run_base(&log), log);
  }
  {
    ScheduleLog log;
    check_busy_recount(experiment.run_optimal(&log), log);
  }
  {
    ScheduleLog log;
    check_busy_recount(experiment.run_proposed(&log), log);
  }
}

}  // namespace
}  // namespace hetsched
