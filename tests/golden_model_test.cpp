// Golden-model cross-check: an intentionally naive, obviously-correct
// reference cache (per-set vector with explicit recency ordering) is run
// against the production Cache over randomised traces across the whole
// design space. Any divergence in hits/misses/writebacks is a bug in one
// of them.
#include <gtest/gtest.h>

#include <list>
#include <map>

#include "cache/cache.hpp"
#include "core/system_config.hpp"

namespace hetsched {
namespace {

// Reference implementation: LRU write-back/write-allocate.
class ReferenceCache {
 public:
  explicit ReferenceCache(const CacheConfig& config) : config_(config) {}

  struct Result {
    bool hit = false;
    bool writeback = false;
  };

  Result access(std::uint32_t address, std::uint8_t size, bool is_write) {
    Result combined;
    combined.hit = true;
    const std::uint32_t first = address / config_.line_bytes;
    const std::uint32_t last = (address + size - 1u) / config_.line_bytes;
    for (std::uint32_t la = first; la <= last; ++la) {
      const Result r = access_line(la, is_write);
      combined.hit = combined.hit && r.hit;
      combined.writeback = combined.writeback || r.writeback;
    }
    return combined;
  }

  std::uint64_t hits = 0, misses = 0, writebacks = 0, evictions = 0;

 private:
  struct Entry {
    std::uint32_t tag;
    bool dirty;
  };

  Result access_line(std::uint32_t line_addr, bool is_write) {
    const std::uint32_t set = line_addr % config_.num_sets();
    const std::uint32_t tag = line_addr / config_.num_sets();
    auto& ways = sets_[set];  // front = most recently used
    for (auto it = ways.begin(); it != ways.end(); ++it) {
      if (it->tag == tag) {
        Entry entry = *it;
        entry.dirty = entry.dirty || is_write;
        ways.erase(it);
        ways.push_front(entry);
        ++hits;
        return {true, false};
      }
    }
    ++misses;
    bool writeback = false;
    if (ways.size() == config_.associativity) {
      if (ways.back().dirty) {
        ++writebacks;
        writeback = true;
      }
      ways.pop_back();
      ++evictions;
    }
    ways.push_front(Entry{tag, is_write});
    return {false, writeback};
  }

  CacheConfig config_;
  std::map<std::uint32_t, std::list<Entry>> sets_;
};

class GoldenModelSweep : public ::testing::TestWithParam<CacheConfig> {};

TEST_P(GoldenModelSweep, ProductionCacheMatchesReference) {
  const CacheConfig config = GetParam();
  Cache production(config);
  ReferenceCache reference(config);

  Rng rng(12345);
  for (int i = 0; i < 60000; ++i) {
    // Mixed locality: hot region + cold sweeps + random far touches.
    std::uint32_t address;
    const auto mode = rng.below(10);
    if (mode < 5) {
      address = static_cast<std::uint32_t>(rng.below(2048));
    } else if (mode < 8) {
      address = static_cast<std::uint32_t>(rng.below(32768));
    } else {
      address = static_cast<std::uint32_t>(rng.below(1 << 20));
    }
    address &= ~1u;
    const auto size = static_cast<std::uint8_t>(1u << rng.below(4));
    const bool is_write = rng.bernoulli(0.35);

    const auto got = production.access(address, size, is_write);
    const auto want = reference.access(address, size, is_write);
    ASSERT_EQ(got.hit, want.hit)
        << config.name() << " @" << address << " step " << i;
    ASSERT_EQ(got.writeback, want.writeback)
        << config.name() << " @" << address << " step " << i;
  }
  EXPECT_EQ(production.stats().hits, reference.hits);
  EXPECT_EQ(production.stats().misses, reference.misses);
  EXPECT_EQ(production.stats().writebacks, reference.writebacks);
  EXPECT_EQ(production.stats().evictions, reference.evictions);
}

INSTANTIATE_TEST_SUITE_P(
    Table1, GoldenModelSweep, ::testing::ValuesIn(DesignSpace::all()),
    [](const ::testing::TestParamInfo<CacheConfig>& info) {
      return info.param.name();
    });

TEST(ScaledSystemTest, ScaledHeterogeneousShapes) {
  for (std::size_t n : {2u, 3u, 4u, 7u, 12u}) {
    const SystemConfig system = SystemConfig::scaled_heterogeneous(n);
    ASSERT_EQ(system.core_count(), n);
    EXPECT_TRUE(system.valid());
    // The last core is always an 8 KB profiling core.
    EXPECT_EQ(system.cores.back().cache_size_bytes, 8192u);
    EXPECT_TRUE(system.cores.back().can_profile);
    EXPECT_EQ(system.primary_profiling_core, n - 1);
    // Every 8 KB core can profile; no other core can.
    for (const CoreSpec& core : system.cores) {
      EXPECT_EQ(core.can_profile, core.cache_size_bytes == 8192u);
    }
  }
  // The quad-core instance matches the paper machine's size mix.
  const SystemConfig four = SystemConfig::scaled_heterogeneous(4);
  const SystemConfig paper = SystemConfig::paper_quadcore();
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(four.cores[i].cache_size_bytes,
              paper.cores[i].cache_size_bytes);
  }
}

}  // namespace
}  // namespace hetsched
