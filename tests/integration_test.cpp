// End-to-end integration tests: the full Experiment pipeline at reduced
// scale — characterisation → ANN training → four-system simulation —
// checking the cross-module contracts the benches rely on.
#include <gtest/gtest.h>

#include <set>

#include "experiment/experiment.hpp"

namespace hetsched {
namespace {

const Experiment& quick_experiment() {
  static const Experiment experiment{ExperimentOptions::quick()};
  return experiment;
}

TEST(ExperimentTest, PipelineProducesTrainedPredictor) {
  const Experiment& e = quick_experiment();
  const PredictorReport& report = e.predictor().report();
  EXPECT_GT(report.dataset_rows, 0u);
  EXPECT_EQ(report.selected_features, 10u);
  EXPECT_GT(report.train_rows, report.validation_rows);
  // A usable predictor: comfortably better than the 1/3 random baseline
  // even at quick-test scale.
  EXPECT_GT(report.train_accuracy, 0.7);
}

TEST(ExperimentTest, ArrivalStreamUsesSchedulingIdsOnly) {
  const Experiment& e = quick_experiment();
  std::set<std::size_t> ids(e.scheduling_ids().begin(),
                            e.scheduling_ids().end());
  for (const JobArrival& a : e.arrivals()) {
    EXPECT_TRUE(ids.count(a.benchmark_id));
  }
  EXPECT_EQ(e.arrivals().size(), e.options().arrivals.count);
}

TEST(ExperimentTest, AllFourSystemsCompleteTheStream) {
  const Experiment& e = quick_experiment();
  for (const SystemRun& run :
       {e.run_base(), e.run_optimal(), e.run_energy_centric(),
        e.run_proposed()}) {
    EXPECT_EQ(run.result.completed_jobs, e.arrivals().size()) << run.name;
    EXPECT_GT(run.result.total_energy().value(), 0.0) << run.name;
    EXPECT_GT(run.result.makespan, 0u) << run.name;
  }
}

TEST(ExperimentTest, SystemCharacters) {
  const Experiment& e = quick_experiment();
  const SystemRun base = e.run_base();
  const SystemRun optimal = e.run_optimal();
  const SystemRun ec = e.run_energy_centric();
  const SystemRun proposed = e.run_proposed();

  // Base: homogeneous, no learning machinery.
  EXPECT_EQ(base.result.profiling_runs, 0u);
  EXPECT_EQ(base.result.tuning_runs, 0u);
  // Optimal: exhaustive exploration, never stalls after profiling...
  EXPECT_GT(optimal.result.tuning_runs, ec.result.tuning_runs);
  // ...while the energy-centric system stalls the most.
  EXPECT_GT(ec.result.stall_events, proposed.result.stall_events);
  // Proposed explores fewer configurations than optimal.
  for (std::size_t i = 0; i < proposed.explored_configs.size(); ++i) {
    EXPECT_LE(proposed.explored_configs[i], optimal.explored_configs[i]);
  }
  // Heterogeneous predictive scheduling beats the fixed base system.
  EXPECT_LT(proposed.result.total_energy().value(),
            base.result.total_energy().value());
}

TEST(ExperimentTest, NormalizeComputesRatios) {
  const Experiment& e = quick_experiment();
  const SystemRun base = e.run_base();
  const NormalizedEnergy self = normalize(base.result, base.result);
  EXPECT_DOUBLE_EQ(self.idle, 1.0);
  EXPECT_DOUBLE_EQ(self.dynamic, 1.0);
  EXPECT_DOUBLE_EQ(self.total, 1.0);
  EXPECT_DOUBLE_EQ(self.cycles, 1.0);
  EXPECT_DOUBLE_EQ(self.makespan, 1.0);
}

TEST(ExperimentTest, IdenticalOptionsReproduceBitIdenticalResults) {
  const ExperimentOptions options = ExperimentOptions::quick();
  const Experiment a(options);
  const Experiment b(options);
  const SimulationResult ra = a.run_proposed().result;
  const SimulationResult rb = b.run_proposed().result;
  EXPECT_DOUBLE_EQ(ra.total_energy().value(), rb.total_energy().value());
  EXPECT_EQ(ra.makespan, rb.makespan);
  EXPECT_EQ(ra.stall_events, rb.stall_events);
  EXPECT_EQ(ra.total_execution_cycles, rb.total_execution_cycles);
}

TEST(ExperimentTest, DifferentSeedsChangeTheStream) {
  ExperimentOptions options = ExperimentOptions::quick();
  const Experiment a(options);
  options.seed = 777;
  const Experiment b(options);
  EXPECT_NE(a.arrivals().front().arrival, b.arrivals().front().arrival);
}

TEST(ExperimentTest, OraclePredictorMatchesCharacterisation) {
  const Experiment& e = quick_experiment();
  const OracleSizePredictor oracle(e.suite());
  for (std::size_t id : e.scheduling_ids()) {
    const BenchmarkProfile& b = e.suite().benchmark(id);
    EXPECT_EQ(oracle.predict(id, b.base_statistics),
              b.oracle_best_size());
  }
}

TEST(ExperimentTest, RunWithCustomPredictorUsesGivenName) {
  const Experiment& e = quick_experiment();
  const OracleSizePredictor oracle(e.suite());
  const SystemRun run = e.run_proposed_with(oracle, "proposed+oracle");
  EXPECT_EQ(run.name, "proposed+oracle");
  EXPECT_EQ(run.result.completed_jobs, e.arrivals().size());
  const SystemRun ec = e.run_energy_centric_with(oracle, "ec+oracle");
  EXPECT_EQ(ec.name, "ec+oracle");
}

TEST(ExperimentTest, ProfilingOverheadStaysSmall) {
  const Experiment& e = quick_experiment();
  const SystemRun proposed = e.run_proposed();
  const double share = proposed.result.profiling_energy.value() /
                       proposed.result.total_energy().value();
  EXPECT_LT(share, 0.05) << "profiling overhead must stay marginal";
}

TEST(ExperimentTest, ExploredConfigsNeverExceedDesignSpace) {
  const Experiment& e = quick_experiment();
  for (const SystemRun& run : {e.run_optimal(), e.run_proposed()}) {
    for (std::size_t count : run.explored_configs) {
      EXPECT_LE(count, 18u);
    }
  }
}

}  // namespace
}  // namespace hetsched
