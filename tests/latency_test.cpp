// Latency suite: job lifecycle spans and deterministic percentiles
// (ctest label: latency).
//
// The headline properties: the JobSpanCollector's windows-JSONL lat_*
// columns and the report's latency section are byte-identical across
// HETSCHED_THREADS values, between streaming and batch runs, and across
// a checkpoint kill-resume at every boundary (in-flight spans join the
// snapshot). Alongside them: Log2Histogram bucket/percentile/merge/
// round-trip semantics, the exact queue/service/stall/sojourn
// decomposition on hand-built event streams, EventTracer span export and
// exact drop accounting under a retention cap, the analyze self-diff
// identity, and a pinned golden for `hetsched analyze` over the
// streaming-smoke scenario.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/policies.hpp"
#include "core/simulator.hpp"
#include "obs/analyzer.hpp"
#include "obs/event_trace.hpp"
#include "obs/latency.hpp"
#include "obs/run_report.hpp"
#include "obs/windowed.hpp"
#include "scenario/checkpoint.hpp"
#include "scenario/scenario_runner.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"
#include "workload/arrivals.hpp"

namespace hetsched {
namespace {

// --- Log2Histogram -------------------------------------------------------

TEST(Log2Histogram, EmptyIsZero) {
  Log2Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.percentile(50.0), 0.0);
  EXPECT_EQ(h.percentile(99.0), 0.0);
}

TEST(Log2Histogram, ZeroBucketAndExactTotals) {
  Log2Histogram h;
  h.record(0);
  h.record(1);
  h.record(2);
  h.record(3);
  h.record(1024);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.sum(), 1030u);
  EXPECT_EQ(h.max(), 1024u);
  // The zero bucket interpolates to exactly zero.
  Log2Histogram zeros;
  zeros.record(0);
  zeros.record(0);
  EXPECT_EQ(zeros.percentile(100.0), 0.0);
}

TEST(Log2Histogram, PercentilesAreMonotoneAndClampedToMax) {
  Log2Histogram h;
  for (std::uint64_t v : {3u, 17u, 900u, 1000u, 1000u, 50'000u}) h.record(v);
  double prev = 0.0;
  for (double p : {0.0, 25.0, 50.0, 75.0, 95.0, 99.0, 100.0}) {
    const double value = h.percentile(p);
    EXPECT_GE(value, prev) << "p" << p;
    EXPECT_LE(value, static_cast<double>(h.max())) << "p" << p;
    prev = value;
  }
  // A single value interpolates within its bucket and clamps to itself.
  Log2Histogram one;
  one.record(1000);
  EXPECT_EQ(one.percentile(100.0), 1000.0);
  EXPECT_GE(one.percentile(50.0), 512.0);  // bucket [512, 1024)
  EXPECT_LE(one.percentile(50.0), 1000.0);
}

TEST(Log2Histogram, MergeMatchesCombinedRecording) {
  Log2Histogram a, b, combined;
  for (std::uint64_t v : {0u, 5u, 90u, 4096u}) {
    a.record(v);
    combined.record(v);
  }
  for (std::uint64_t v : {7u, 7u, 300'000u}) {
    b.record(v);
    combined.record(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_EQ(a.sum(), combined.sum());
  EXPECT_EQ(a.max(), combined.max());
  for (double p : {1.0, 50.0, 95.0, 99.0}) {
    EXPECT_EQ(a.percentile(p), combined.percentile(p)) << "p" << p;
  }
}

TEST(Log2Histogram, StateRoundTripsAndRejectsGarbage) {
  Log2Histogram h;
  for (std::uint64_t v : {0u, 1u, 777u, 1u << 20}) h.record(v);
  std::ostringstream saved;
  h.save_state(saved);

  Log2Histogram restored;
  std::istringstream in(saved.str());
  restored.restore_state(in, "test");
  EXPECT_EQ(restored.count(), h.count());
  EXPECT_EQ(restored.sum(), h.sum());
  EXPECT_EQ(restored.max(), h.max());
  for (double p : {10.0, 50.0, 99.0}) {
    EXPECT_EQ(restored.percentile(p), h.percentile(p));
  }

  Log2Histogram garbage;
  std::istringstream bad("not a histogram");
  EXPECT_THROW(garbage.restore_state(bad, "test"), std::runtime_error);
}

// --- JobSpanCollector decomposition --------------------------------------

ArrivalEvent arrival(std::uint64_t job, SimTime t,
                     std::size_t benchmark = 0) {
  ArrivalEvent e;
  e.time = t;
  e.job_id = job;
  e.benchmark_id = benchmark;
  return e;
}

DispatchEvent dispatch(std::uint64_t job, SimTime t, std::size_t core = 0) {
  DispatchEvent e;
  e.time = t;
  e.core = core;
  e.job_id = job;
  return e;
}

ScheduledSlice slice(std::uint64_t job, SimTime start, SimTime end,
                     bool completed = true) {
  ScheduledSlice s;
  s.job_id = job;
  s.core = 0;
  s.start = start;
  s.end = end;
  s.completed = completed;
  return s;
}

TEST(JobSpanCollector, DecomposesSingleSliceLifecycle) {
  JobSpanCollector spans("test", 1'000'000);
  spans.on_arrival(arrival(1, 100));
  EXPECT_EQ(spans.in_flight(), 1u);
  spans.on_dispatch(dispatch(1, 300));
  spans.on_slice(slice(1, 400, 900));
  spans.finalize();

  EXPECT_EQ(spans.in_flight(), 0u);
  EXPECT_EQ(spans.jobs_completed(), 1u);
  EXPECT_EQ(spans.totals().queue.sum(), 200u);    // 300 - 100
  EXPECT_EQ(spans.totals().service.sum(), 500u);  // 900 - 400
  EXPECT_EQ(spans.totals().sojourn.sum(), 800u);  // 900 - 100
  EXPECT_EQ(spans.totals().stall.sum(), 100u);    // 800 - 200 - 500

  ASSERT_EQ(spans.slowest().size(), 1u);
  const SlowJob& job = spans.slowest().front();
  EXPECT_EQ(job.job_id, 1u);
  EXPECT_EQ(job.queue, 200u);
  EXPECT_EQ(job.service, 500u);
  EXPECT_EQ(job.stall, 100u);
  EXPECT_EQ(job.sojourn, 800u);
  EXPECT_EQ(job.slices, 1u);
}

TEST(JobSpanCollector, PreemptedFragmentsFoldIntoServiceAndSliceCount) {
  JobSpanCollector spans("test", 1'000'000);
  spans.on_arrival(arrival(7, 0));
  spans.on_dispatch(dispatch(7, 10));
  spans.on_slice(slice(7, 20, 50, /*completed=*/false));  // preempted
  spans.on_dispatch(dispatch(7, 100));  // re-dispatch: queue unchanged
  spans.on_slice(slice(7, 110, 160));
  spans.finalize();

  EXPECT_EQ(spans.jobs_completed(), 1u);
  EXPECT_EQ(spans.totals().queue.sum(), 10u);
  EXPECT_EQ(spans.totals().service.sum(), 80u);   // 30 + 50
  EXPECT_EQ(spans.totals().sojourn.sum(), 160u);
  EXPECT_EQ(spans.totals().stall.sum(), 70u);     // 160 - 10 - 80
  ASSERT_EQ(spans.slowest().size(), 1u);
  EXPECT_EQ(spans.slowest().front().slices, 2u);
}

TEST(JobSpanCollector, SlowestListIsSojournOrderedAndBounded) {
  JobSpanCollector spans("test", 1'000'000, /*top_k=*/2);
  // Three jobs with sojourns 500, 900, 700: top-2 is {900, 700}.
  for (std::uint64_t job : {1u, 2u, 3u}) {
    spans.on_arrival(arrival(job, 0));
    spans.on_dispatch(dispatch(job, 0));
  }
  spans.on_slice(slice(1, 0, 500));
  spans.on_slice(slice(2, 0, 900));
  spans.on_slice(slice(3, 0, 700));
  spans.finalize();

  EXPECT_EQ(spans.jobs_completed(), 3u);
  ASSERT_EQ(spans.slowest().size(), 2u);
  EXPECT_EQ(spans.slowest()[0].job_id, 2u);
  EXPECT_EQ(spans.slowest()[0].sojourn, 900u);
  EXPECT_EQ(spans.slowest()[1].job_id, 3u);
  EXPECT_EQ(spans.slowest()[1].sojourn, 700u);
}

TEST(JobSpanCollector, WindowDigestTracksRetirementsPerWindow) {
  JobSpanCollector spans("test", 1000);
  spans.on_arrival(arrival(1, 100));
  spans.on_dispatch(dispatch(1, 200));
  spans.on_slice(slice(1, 300, 900));  // retires in window 0, sojourn 800
  spans.on_arrival(arrival(2, 950));
  spans.on_dispatch(dispatch(2, 1100));  // advances past the boundary
  spans.on_slice(slice(2, 1200, 1500));  // retires in window 1, sojourn 550
  spans.finalize();

  const WindowLatency w0 = spans.window_latency(0);
  EXPECT_EQ(w0.index, 0u);
  EXPECT_EQ(w0.jobs, 1u);
  EXPECT_EQ(w0.max, 800u);
  const WindowLatency w1 = spans.window_latency(1);
  EXPECT_EQ(w1.jobs, 1u);
  EXPECT_EQ(w1.max, 550u);
  // Window 2 never existed.
  EXPECT_DEATH((void)spans.window_latency(2), "precondition");
}

TEST(JobSpanCollector, StateRoundTripPreservesInFlightSpans) {
  // A collector checkpointed mid-span must retire the job after restore
  // with the same decomposition the uninterrupted collector produces.
  JobSpanCollector live("test", 1'000'000);
  live.on_arrival(arrival(42, 100, /*benchmark=*/3));
  live.on_dispatch(dispatch(42, 250));
  live.on_slice(slice(42, 260, 400, /*completed=*/false));

  std::ostringstream saved;
  live.save_state(saved);
  JobSpanCollector restored("test", 1'000'000);
  std::istringstream in(saved.str());
  restored.restore_state(in, "test");
  EXPECT_EQ(restored.in_flight(), 1u);

  for (JobSpanCollector* c : {&live, &restored}) {
    c->on_slice(slice(42, 500, 800));
    c->finalize();
  }
  EXPECT_EQ(restored.jobs_completed(), 1u);
  EXPECT_EQ(restored.totals().queue.sum(), live.totals().queue.sum());
  EXPECT_EQ(restored.totals().service.sum(), live.totals().service.sum());
  EXPECT_EQ(restored.totals().stall.sum(), live.totals().stall.sum());
  EXPECT_EQ(restored.totals().sojourn.sum(), live.totals().sojourn.sum());
  ASSERT_EQ(restored.slowest().size(), 1u);
  EXPECT_EQ(restored.slowest().front().benchmark_id, 3u);
  EXPECT_EQ(restored.slowest().front().service, 440u);  // 140 + 300

  JobSpanCollector garbage("test", 1'000'000);
  std::istringstream bad("not a span snapshot");
  EXPECT_THROW(garbage.restore_state(bad, "test"), std::runtime_error);
  // Mismatched construction parameters are rejected, not silently adopted.
  JobSpanCollector narrower("test", 500);
  std::istringstream mismatched(saved.str());
  EXPECT_THROW(narrower.restore_state(mismatched, "test"),
               std::runtime_error);
}

// --- End-to-end determinism ----------------------------------------------

// One cheap suite shared by the integration tests below; the optimal
// policy needs no predictor training.
struct World {
  Scenario base;
  ScenarioContext context;
};

World& world() {
  static World* w = [] {
    Scenario s;
    s.name = "latency-fixture";
    s.system = Scenario::SystemKind::kScaledHeterogeneous;
    s.cores = 4;
    s.policy = "optimal";
    s.seed = 42;
    s.arrivals.count = 250;
    s.arrivals.mean_interarrival_cycles = 40000.0;
    s.suite.kernel_scale = 0.25;
    s.suite.variants_per_kernel = 1;
    return new World{s, ScenarioContext(s)};
  }();
  return *w;
}

std::string windows_text(const WindowedCollector& collector) {
  std::ostringstream out;
  collector.write_jsonl(out);
  return out.str();
}

// The deterministic latency fingerprint of a run: the report's latency
// section rendered through the real JSON writer (phases suppressed).
std::string latency_json(const JobSpanCollector& spans) {
  RunReport report;
  report.include_phases = false;
  attach_latency_summary(report, {&spans});
  return run_report_to_json(report);
}

struct SpannedRun {
  std::string windows_jsonl;
  std::string latency;
  std::uint64_t completed = 0;
};

SpannedRun run_with_spans(std::size_t threads) {
  World& w = world();
  ThreadPool::set_global_threads(threads);
  JobSpanCollector spans(w.base.policy, 1'000'000);
  WindowedCollector collector(w.base.cores, WindowedOptions{1'000'000, 0},
                              &w.context.suite());
  collector.set_span_source(&spans);
  FanoutObserver fanout({&spans, &collector});
  const ScenarioOutcome outcome = run_scenario(w.base, w.context, &fanout);
  spans.finalize();
  collector.finalize();
  EXPECT_EQ(outcome.stream.invariant_violations(), 0u);
  EXPECT_EQ(spans.jobs_completed(), outcome.result.completed_jobs);
  EXPECT_EQ(spans.in_flight(), 0u);
  return {windows_text(collector), latency_json(spans),
          outcome.result.completed_jobs};
}

TEST(LatencyDeterminism, ByteIdenticalAcrossThreadCounts) {
  const SpannedRun r1 = run_with_spans(1);
  const SpannedRun r3 = run_with_spans(3);
  const SpannedRun r4 = run_with_spans(4);
  ThreadPool::set_global_threads(ThreadPool::default_threads());
  EXPECT_GT(r1.completed, 0u);
  EXPECT_FALSE(r1.windows_jsonl.empty());
  EXPECT_EQ(r1.windows_jsonl, r3.windows_jsonl);
  EXPECT_EQ(r1.windows_jsonl, r4.windows_jsonl);
  EXPECT_EQ(r1.latency, r3.latency);
  EXPECT_EQ(r1.latency, r4.latency);
}

TEST(LatencyDeterminism, StreamAndBatchSpansAreByteIdentical) {
  World& w = world();
  const Scenario& s = w.base;

  // Batch: materialise the arrivals, run via run(vector).
  OptimalPolicy policy;
  MulticoreSimulator simulator(s.make_system(), w.context.suite(),
                               w.context.energy(), policy, s.discipline);
  JobSpanCollector batch_spans(s.policy, 1'000'000);
  WindowedCollector batch_collector(s.cores, WindowedOptions{1'000'000, 0},
                                    &w.context.suite());
  batch_collector.set_span_source(&batch_spans);
  FanoutObserver batch_fanout({&batch_spans, &batch_collector});
  simulator.set_observer(&batch_fanout);
  Rng rng(s.seed ^ 0xa5a5a5a5ULL);
  const std::vector<JobArrival> arrivals =
      generate_arrivals(w.context.scheduling_ids(), s.arrivals, rng);
  const SimulationResult batch = simulator.run(arrivals);
  batch_spans.finalize();
  batch_collector.finalize();

  const SpannedRun streamed = run_with_spans(ThreadPool::default_threads());
  EXPECT_EQ(batch.completed_jobs, streamed.completed);
  EXPECT_EQ(batch_spans.jobs_completed(), batch.completed_jobs);
  EXPECT_EQ(windows_text(batch_collector), streamed.windows_jsonl);
  EXPECT_EQ(latency_json(batch_spans), streamed.latency);
}

TEST(LatencyDeterminism, KillAtEveryBoundaryPreservesSpanState) {
  World& w = world();
  CheckpointRunOptions options;
  options.window_cycles = 1'000'000;
  options.checkpoint_every = 1;
  std::vector<std::string> checkpoints;
  options.capture_checkpoints = &checkpoints;
  const CheckpointRunOutcome full =
      run_scenario_checkpointed(w.base, w.context, options);
  ASSERT_FALSE(full.halted);
  ASSERT_GE(checkpoints.size(), 3u);

  const std::string ref_windows = windows_text(full.windows);
  const std::string ref_latency = latency_json(full.spans);
  EXPECT_EQ(full.spans.jobs_completed(), full.result.completed_jobs);

  for (std::size_t k = 0; k < checkpoints.size(); ++k) {
    CheckpointRunOptions resume;
    resume.window_cycles = 1'000'000;
    resume.checkpoint_every = 1;
    resume.resume_text = checkpoints[k];
    const CheckpointRunOutcome resumed =
        run_scenario_checkpointed(w.base, w.context, resume);
    ASSERT_FALSE(resumed.halted);
    EXPECT_EQ(resumed.resumed_from, k + 1);
    EXPECT_EQ(windows_text(resumed.windows), ref_windows)
        << "boundary " << k + 1;
    EXPECT_EQ(latency_json(resumed.spans), ref_latency)
        << "boundary " << k + 1;
  }
}

// --- EventTracer span export ---------------------------------------------

std::size_t count_occurrences(const std::string& text,
                              const std::string& needle) {
  std::size_t count = 0;
  for (std::size_t at = text.find(needle); at != std::string::npos;
       at = text.find(needle, at + needle.size())) {
    ++count;
  }
  return count;
}

TEST(TracerSpans, ChromeTraceExportsPairedAsyncSpans) {
  World& w = world();
  EventTracer tracer;
  tracer.set_job_spans(true);
  const ScenarioOutcome outcome = run_scenario(w.base, w.context, &tracer);
  EXPECT_EQ(tracer.dropped_events(), 0u);

  std::size_t begins = 0;
  std::size_t ends = 0;
  for (const TraceEvent& event : tracer.events()) {
    begins += event.phase == 'b' ? 1 : 0;
    ends += event.phase == 'e' ? 1 : 0;
  }
  // One 'b' per admitted job, one 'e' per retirement.
  EXPECT_EQ(begins, w.base.arrivals.count);
  EXPECT_EQ(ends, outcome.result.completed_jobs);

  std::ostringstream json;
  const std::vector<std::pair<std::string, const EventTracer*>> procs = {
      {"sim", &tracer}};
  write_chrome_trace(json, procs);
  const std::string text = json.str();
  EXPECT_EQ(count_occurrences(text, "\"ph\":\"b\""), begins);
  EXPECT_EQ(count_occurrences(text, "\"ph\":\"e\""), ends);
  // Async pairing needs cat + id on every span event.
  EXPECT_EQ(count_occurrences(text, "\"cat\":\"job\""), begins + ends);

  // The disabled path stays span-free (the pre-span trace byte contract).
  EventTracer plain;
  run_scenario(w.base, w.context, &plain);
  for (const TraceEvent& event : plain.events()) {
    EXPECT_NE(event.phase, 'b');
    EXPECT_NE(event.phase, 'e');
  }
}

TEST(TracerSpans, DroppedEventsCountsExactDropsUnderRetentionCap) {
  World& w = world();
  EventTracer unlimited;
  unlimited.set_job_spans(true);
  run_scenario(w.base, w.context, &unlimited);
  const std::size_t total = unlimited.events().size();
  ASSERT_GT(total, 10u);
  EXPECT_EQ(unlimited.dropped_events(), 0u);

  const std::size_t cap = total / 2;
  EventTracer capped;
  capped.set_job_spans(true);
  capped.set_max_events(cap);
  EXPECT_EQ(capped.max_events(), cap);
  run_scenario(w.base, w.context, &capped);
  EXPECT_EQ(capped.events().size(), cap);
  EXPECT_EQ(capped.dropped_events(), total - cap);
  // The retained stream is the run's prefix.
  for (std::size_t i = 0; i < cap; ++i) {
    EXPECT_EQ(capped.events()[i].ts, unlimited.events()[i].ts) << i;
    EXPECT_EQ(capped.events()[i].phase, unlimited.events()[i].phase) << i;
  }
}

// --- analyze -------------------------------------------------------------

TEST(Analyze, SelfDiffIsCleanAndRegressionsAreFlagged) {
  const SpannedRun run = run_with_spans(ThreadPool::default_threads());
  ThreadPool::set_global_threads(ThreadPool::default_threads());
  bool regressed = true;
  const std::string self =
      analyze_diff(run.latency, run.latency, 0.05, &regressed);
  EXPECT_FALSE(regressed);
  EXPECT_NE(self.find("deltas: 0\n"), std::string::npos) << self;
  EXPECT_NE(self.find("analyze-diff: ok\n"), std::string::npos);

  // A worsened lower-is-better metric regresses...
  const std::string worse = analyze_diff(R"({"overhead_ms": 10})",
                                         R"({"overhead_ms": 20})", 0.05,
                                         &regressed);
  EXPECT_TRUE(regressed);
  EXPECT_NE(worse.find("REGRESSED"), std::string::npos);
  // ...and so does a metric that vanished.
  analyze_diff(R"({"jobs_per_sec": 5})", R"({"other": 5})", 0.05,
               &regressed);
  EXPECT_TRUE(regressed);
  // A neutral-direction drift is reported but not a failure.
  const std::string neutral = analyze_diff(R"({"result": {"makespan": 10}})",
                                           R"({"result": {"makespan": 12}})",
                                           0.05, &regressed);
  EXPECT_FALSE(regressed);
  EXPECT_NE(neutral.find("deltas: 1\n"), std::string::npos);
}

TEST(Analyze, GoldenStreamingSmokeAnalysis) {
  const std::string dir =
      std::string(HETSCHED_SOURCE_DIR) + "/examples/scenarios/";
  std::ifstream in(dir + "streaming_smoke.scn");
  ASSERT_TRUE(in) << "missing " << dir << "streaming_smoke.scn";
  const Scenario scenario = Scenario::parse(in);
  const ScenarioContext context(scenario);

  // Mirror the CLI scenario path: spans ahead of the windowed collector.
  JobSpanCollector spans(scenario.policy, 1'000'000);
  WindowedCollector collector(scenario.make_system().core_count(),
                              WindowedOptions{1'000'000, 0},
                              &context.suite());
  collector.set_span_source(&spans);
  FanoutObserver fanout({&spans, &collector});
  const ScenarioOutcome outcome = run_scenario(scenario, context, &fanout);
  spans.finalize();
  collector.finalize();

  RunReport report;
  report.include_phases = false;
  report.command = "scenario";
  report.name = scenario.name;
  report.policy = scenario.policy;
  report.system = std::string(to_string(scenario.system));
  report.discipline = std::string(to_string(scenario.discipline));
  report.cores = scenario.make_system().core_count();
  report.seed = scenario.seed;
  report.jobs = scenario.arrivals.count;
  report.completed_jobs = outcome.result.completed_jobs;
  report.makespan = outcome.result.makespan;
  report.total_energy_mj = outcome.result.total_energy().millijoules();
  report.stream_digest = outcome.stream.digest();
  attach_window_summary(report, collector, AnomalyConfig{});
  attach_latency_summary(report, {&spans});
  const std::string report_json = run_report_to_json(report);

  const std::string analysis =
      analyze_run(report_json, windows_text(collector), AnalyzeOptions{});
  // Sanity: the breakdown found the latency section and the policy row.
  EXPECT_NE(analysis.find("== latency breakdown (cycles) =="),
            std::string::npos);
  EXPECT_NE(analysis.find(scenario.policy), std::string::npos);

  const std::string golden_path = dir + "streaming_smoke.analyze.txt";
  if (std::getenv("HETSCHED_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(golden_path);
    out << analysis;
    ASSERT_TRUE(out) << "cannot write " << golden_path;
    GTEST_SKIP() << "golden analysis regenerated at " << golden_path;
  }
  std::ifstream golden_in(golden_path);
  ASSERT_TRUE(golden_in) << "missing golden analysis " << golden_path
                         << "; regenerate with HETSCHED_REGEN_GOLDEN=1";
  std::stringstream golden;
  golden << golden_in.rdbuf();
  EXPECT_EQ(analysis, golden.str())
      << "analyze output diverged from the checked-in golden; if the "
         "change is intended, regenerate with HETSCHED_REGEN_GOLDEN=1 "
         "and commit the new file";

  // The analyzer's diff of a report against itself is the identity.
  bool regressed = true;
  const std::string self = analyze_diff(report_json, report_json, 0.0,
                                        &regressed);
  EXPECT_FALSE(regressed);
  EXPECT_NE(self.find("deltas: 0\n"), std::string::npos);
}

}  // namespace
}  // namespace hetsched
