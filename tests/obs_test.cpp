// Tests for the observability layer (src/obs): metrics-registry
// semantics and JSON snapshots, tracer/simulator consistency, and the
// headline determinism contract — trace and metrics output is
// byte-identical for every HETSCHED_THREADS value.
#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "experiment/experiment.hpp"
#include "obs/observability.hpp"
#include "util/thread_pool.hpp"
#include "workload/profile_cache.hpp"

namespace hetsched {
namespace {

TEST(MetricsRegistryTest, JsonKeysFollowRegistrationOrder) {
  MetricsRegistry registry;
  registry.counter("zeta").add(3);
  registry.counter("alpha");
  registry.gauge("mid").set(1.5);
  const std::string json = registry.to_json();
  // "zeta" registered first must precede "alpha" despite sorting last.
  EXPECT_LT(json.find("\"zeta\""), json.find("\"alpha\""));
  EXPECT_EQ(json, registry.to_json());  // snapshots are stable
}

TEST(MetricsRegistryTest, ReRegistrationReturnsSameMetric) {
  MetricsRegistry registry;
  Counter& a = registry.counter("hits");
  a.add(2);
  Counter& b = registry.counter("hits");
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(b.value(), 2u);
  Gauge& g = registry.gauge("level");
  g.set(4.25);
  EXPECT_EQ(&registry.gauge("level"), &g);
  FixedHistogram& h = registry.histogram("lat", 0.0, 10.0, 5);
  EXPECT_EQ(&registry.histogram("lat", 0.0, 10.0, 5), &h);
}

TEST(MetricsRegistryTest, KindMismatchDies) {
  MetricsRegistry registry;
  registry.counter("x");
  EXPECT_DEATH(registry.gauge("x"), "precondition");
  registry.histogram("h", 0.0, 1.0, 4);
  EXPECT_DEATH(registry.histogram("h", 0.0, 2.0, 4), "precondition");
}

TEST(MetricsRegistryTest, SnapshotValues) {
  MetricsRegistry registry;
  registry.counter("jobs").add(7);
  registry.gauge("energy_mj").set(2.5);
  FixedHistogram& h = registry.histogram("cycles", 0.0, 100.0, 4);
  h.record(-1.0);   // underflow
  h.record(10.0);   // bucket 0
  h.record(99.0);   // bucket 3
  h.record(100.0);  // overflow (range is [lo, hi))
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.buckets()[0], 1u);
  EXPECT_EQ(h.buckets()[3], 1u);

  const std::string json = registry.to_json();
  EXPECT_NE(json.find("\"jobs\": 7"), std::string::npos) << json;
  EXPECT_NE(json.find("\"energy_mj\": 2.5"), std::string::npos) << json;
  EXPECT_NE(json.find("\"underflow\": 1"), std::string::npos) << json;
}

TEST(MetricsRegistryTest, JsonEscape) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("back\\slash"), "back\\\\slash");
  EXPECT_EQ(json_escape("line\nbreak"), "line\\nbreak");
  EXPECT_EQ(json_escape(std::string_view("\x01", 1)), "\\u0001");
}

TEST(EventTracerTest, CountersMatchSimulationResult) {
  ExperimentOptions options = ExperimentOptions::quick();
  options.arrivals.count = 200;
  Experiment experiment(options);

  MetricsRegistry metrics;
  EventTracer tracer(&metrics);
  const SystemRun run = experiment.run_proposed(&tracer);

  EXPECT_EQ(metrics.counter("sim.dispatches").value(),
            run.result.completed_jobs);
  EXPECT_EQ(metrics.counter("sim.completed_slices").value(),
            run.result.completed_jobs);
  EXPECT_EQ(metrics.counter("sim.preemptions").value(),
            run.result.preemptions);
  EXPECT_EQ(metrics.counter("sim.reconfig_attempts").value(),
            run.result.reconfigurations);
  EXPECT_EQ(metrics.counter("sim.reconfig_failures").value(), 0u);
  EXPECT_FALSE(tracer.events().empty());
  // Every slice span stays within the makespan.
  for (const TraceEvent& e : tracer.events()) {
    EXPECT_LE(e.ts + e.dur, run.result.makespan);
  }
}

TEST(EventTracerTest, ObserverDoesNotPerturbSimulation) {
  ExperimentOptions options = ExperimentOptions::quick();
  options.arrivals.count = 150;
  Experiment experiment(options);

  const SystemRun bare = experiment.run_proposed();
  MetricsRegistry metrics;
  EventTracer tracer(&metrics);
  const SystemRun traced = experiment.run_proposed(&tracer);

  EXPECT_EQ(bare.result.makespan, traced.result.makespan);
  EXPECT_EQ(bare.result.completed_jobs, traced.result.completed_jobs);
  EXPECT_EQ(bare.result.total_energy().value(),
            traced.result.total_energy().value());
}

// The headline contract: one full observed run — profile-cache path,
// suite build over the pool, four simulated systems, merged trace and
// metrics snapshot — produces byte-identical JSON for every thread
// count.
std::pair<std::string, std::string> observed_run(std::size_t threads) {
  ThreadPool::set_global_threads(threads);

  const std::string cache_path =
      "obs_determinism_" + std::to_string(threads) + ".profile";
  std::remove(cache_path.c_str());

  MetricsRegistry metrics;
  EventTracer runtime;
  ProbeRecorder recorder(metrics, &runtime);
  ScopedProbe probe(&recorder);

  ExperimentOptions options = ExperimentOptions::quick();
  options.arrivals.count = 120;
  options.profile_cache_path = cache_path;
  Experiment experiment(options);

  // Four per-system tracers, registered serially before the fan-out.
  const char* names[4] = {"base", "optimal", "energy-centric", "proposed"};
  std::vector<EventTracer> tracers;
  tracers.reserve(4);
  for (const char* name : names) {
    tracers.emplace_back(&metrics, std::string(name) + ".sim.");
  }
  Experiment::StandardObservers observers;
  observers.base = &tracers[0];
  observers.optimal = &tracers[1];
  observers.energy_centric = &tracers[2];
  observers.proposed = &tracers[3];
  const Experiment::StandardRuns runs =
      experiment.run_standard_systems(observers);

  record_result_metrics(metrics, "base.", runs.base.result);
  record_result_metrics(metrics, "optimal.", runs.optimal.result);
  record_result_metrics(metrics, "energy-centric.",
                        runs.energy_centric.result);
  record_result_metrics(metrics, "proposed.", runs.proposed.result);

  std::vector<std::pair<std::string, const EventTracer*>> processes;
  processes.emplace_back("runtime", &runtime);
  for (std::size_t i = 0; i < 4; ++i) {
    processes.emplace_back(names[i], &tracers[i]);
  }
  std::ostringstream trace;
  write_chrome_trace(trace, processes);

  std::remove(cache_path.c_str());
  return {trace.str(), metrics.to_json()};
}

TEST(ObsDeterminismTest, TraceAndMetricsIdenticalAcrossThreadCounts) {
  const auto [trace1, metrics1] = observed_run(1);
  const auto [trace3, metrics3] = observed_run(3);
  const auto [trace4, metrics4] = observed_run(4);
  ThreadPool::set_global_threads(ThreadPool::default_threads());

  EXPECT_EQ(trace1, trace3);
  EXPECT_EQ(trace1, trace4);
  EXPECT_EQ(metrics1, metrics3);
  EXPECT_EQ(metrics1, metrics4);
  // And the trace is non-trivial: it holds events from all five
  // processes (runtime + four systems).
  EXPECT_NE(trace1.find("\"runtime\""), std::string::npos);
  EXPECT_NE(trace1.find("\"energy-centric\""), std::string::npos);
  EXPECT_NE(trace1.find("pool_job"), std::string::npos);
  EXPECT_NE(trace1.find("profile_cache:miss"), std::string::npos);
}

}  // namespace
}  // namespace hetsched
