// Policy registry + portfolio meta-scheduler suite (ctest label:
// portfolio).
//
// Covers the registry's name-addressable construction (fixed order,
// portfolio:... spec parsing, predictor/suite requirements), the
// PortfolioPolicy determinism contract — a single-contender portfolio is
// byte-identical to running that contender directly, the selection
// sequence is invariant across HETSCHED_THREADS and between streaming
// and batch execution, and checkpoint kill-and-resume rebuilds the full
// selector state — plus the golden portfolio_smoke scenario whose
// checked-in window stream and run report pin at least one mid-run
// policy switch.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "core/policy_registry.hpp"
#include "core/portfolio_policy.hpp"
#include "core/simulator.hpp"
#include "obs/latency.hpp"
#include "obs/run_report.hpp"
#include "obs/windowed.hpp"
#include "scenario/checkpoint.hpp"
#include "scenario/scenario_runner.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"
#include "workload/arrivals.hpp"
#include "workload/profile_cache.hpp"

namespace hetsched {
namespace {

// One cheap suite shared by every test below: the portfolio roster
// avoids ANN contenders, so the context never trains a predictor.
struct World {
  Scenario base;
  ScenarioContext context;
};

World& world() {
  static World* w = [] {
    Scenario s;
    s.name = "portfolio-fixture";
    s.system = Scenario::SystemKind::kScaledHeterogeneous;
    s.cores = 6;
    s.policy = "portfolio:optimal+sjf+energy-greedy+random";
    s.seed = 42;
    s.arrivals.count = 400;
    s.arrivals.mean_interarrival_cycles = 40000.0;
    s.suite.kernel_scale = 0.25;
    s.suite.variants_per_kernel = 1;
    return new World{s, ScenarioContext(s)};
  }();
  return *w;
}

std::string result_text(const SimulationResult& result) {
  std::ostringstream out;
  save_simulation_result(out, result);
  return out.str();
}

std::string windows_text(const WindowedCollector& collector) {
  std::ostringstream out;
  collector.write_jsonl(out);
  return out.str();
}

// --- Registry ------------------------------------------------------------

TEST(PolicyRegistryTest, NamesKeepRegistrationOrder) {
  const std::vector<std::string> expected = {
      "base",     "optimal",       "energy-centric", "proposed", "realtime",
      "sjf",      "energy-greedy", "random",         "oracle",   "cp-aware"};
  EXPECT_EQ(PolicyRegistry::instance().names(), expected);
}

TEST(PolicyRegistryTest, KnownCoversBaseNamesAndPortfolioSpecs) {
  const PolicyRegistry& r = PolicyRegistry::instance();
  EXPECT_TRUE(r.known("proposed"));
  EXPECT_TRUE(r.known("oracle"));
  EXPECT_TRUE(r.known("portfolio:optimal+sjf"));
  EXPECT_TRUE(r.known("portfolio:optimal+sjf@250000"));
  EXPECT_FALSE(r.known(""));
  EXPECT_FALSE(r.known("propsed"));
  EXPECT_FALSE(r.known("portfolio:"));
  EXPECT_FALSE(r.known("portfolio:optimal+"));
  EXPECT_FALSE(r.known("portfolio:optimal+no-such-policy"));
  EXPECT_FALSE(r.known("portfolio:optimal+optimal"));  // duplicate
  EXPECT_FALSE(r.known("portfolio:optimal@"));         // empty window
  EXPECT_FALSE(r.known("portfolio:optimal@0"));        // zero window
  EXPECT_FALSE(r.known("portfolio:optimal@12x"));      // trailing garbage
  EXPECT_FALSE(r.known("portfolio:portfolio:optimal+sjf"));  // no nesting
}

TEST(PolicyRegistryTest, NeedsPredictorFollowsTheContenders) {
  const PolicyRegistry& r = PolicyRegistry::instance();
  EXPECT_TRUE(r.needs_predictor("proposed"));
  EXPECT_TRUE(r.needs_predictor("realtime"));
  EXPECT_TRUE(r.needs_predictor("cp-aware"));
  EXPECT_FALSE(r.needs_predictor("sjf"));
  EXPECT_FALSE(r.needs_predictor("oracle"));
  EXPECT_TRUE(r.needs_predictor("portfolio:sjf+proposed"));
  EXPECT_FALSE(r.needs_predictor("portfolio:optimal+sjf+random"));
  EXPECT_FALSE(r.needs_predictor("no-such-policy"));
}

TEST(PolicyRegistryTest, ParsePortfolioExtractsRosterAndWindow) {
  const PolicyRegistry& r = PolicyRegistry::instance();
  const auto spec =
      r.parse_portfolio("portfolio:optimal+sjf+energy-greedy@250000");
  ASSERT_TRUE(spec.has_value());
  EXPECT_EQ(spec->contenders, (std::vector<std::string>{
                                  "optimal", "sjf", "energy-greedy"}));
  EXPECT_EQ(spec->window_cycles, 250000u);

  const auto defaulted = r.parse_portfolio("portfolio:base+random");
  ASSERT_TRUE(defaulted.has_value());
  EXPECT_EQ(defaulted->window_cycles, PortfolioPolicy::kDefaultWindowCycles);

  EXPECT_FALSE(r.parse_portfolio("optimal").has_value());
}

TEST(PolicyRegistryTest, MakeBuildsNamedPoliciesAndPortfolios) {
  World& w = world();
  const PolicyContext ctx{nullptr, &w.context.suite(), 42};
  const PolicyRegistry& r = PolicyRegistry::instance();
  EXPECT_EQ(r.make("base", ctx)->name(), "base");
  EXPECT_EQ(r.make("optimal", ctx)->name(), "optimal");
  EXPECT_EQ(r.make("sjf", ctx)->name(), "sjf");
  EXPECT_EQ(r.make("energy-greedy", ctx)->name(), "energy-greedy");
  EXPECT_EQ(r.make("random", ctx)->name(), "random");
  EXPECT_EQ(r.make("oracle", ctx)->name(), "oracle");
  EXPECT_EQ(r.make("portfolio:optimal+sjf", ctx)->name(), "portfolio");
}

TEST(PolicyRegistryTest, ScenarioParserRejectsUnknownPolicyWithHelp) {
  std::istringstream in(
      "name bad\nsystem scaled\ncores 4\npolicy no-such-policy\n");
  try {
    (void)Scenario::parse(in);
    FAIL() << "expected the parser to reject the policy";
  } catch (const std::exception& e) {
    EXPECT_NE(std::string(e.what()).find("policy must be one of"),
              std::string::npos);
  }

  Scenario s = world().base;
  s.policy = "portfolio:optimal+optimal";
  EXPECT_THROW(s.validate(), std::invalid_argument);
}

// --- Determinism properties ----------------------------------------------

// A portfolio with one contender never switches and must reproduce that
// contender's run bit for bit: digest, serialized result, and windows.
TEST(PortfolioDeterminism, SingleContenderPortfolioMatchesThePolicyItself) {
  World& w = world();
  Scenario direct = w.base;
  direct.policy = "optimal";
  Scenario wrapped = w.base;
  wrapped.policy = "portfolio:optimal";

  auto run_with_windows = [&](const Scenario& s) {
    WindowedCollector collector(s.make_system().core_count(),
                                WindowedOptions{1'000'000, 0},
                                &w.context.suite());
    ScenarioOutcome outcome = run_scenario(s, w.context, &collector);
    collector.finalize();
    return std::make_pair(std::move(outcome), windows_text(collector));
  };
  const auto [direct_outcome, direct_windows] = run_with_windows(direct);
  const auto [wrapped_outcome, wrapped_windows] = run_with_windows(wrapped);

  EXPECT_EQ(wrapped_outcome.stream.digest(), direct_outcome.stream.digest());
  EXPECT_EQ(result_text(wrapped_outcome.result),
            result_text(direct_outcome.result));
  EXPECT_EQ(wrapped_windows, direct_windows);

  EXPECT_FALSE(direct_outcome.portfolio.has_value());
  ASSERT_TRUE(wrapped_outcome.portfolio.has_value());
  const PortfolioStats& stats = *wrapped_outcome.portfolio;
  EXPECT_EQ(stats.contenders, std::vector<std::string>{"optimal"});
  EXPECT_TRUE(stats.switches.empty());
  EXPECT_EQ(stats.active, "optimal");
  ASSERT_EQ(stats.windows_active.size(), 1u);
  EXPECT_EQ(stats.windows_active[0], stats.windows_closed);
}

// The fixture portfolio must actually exercise mid-run switching — the
// rest of the suite rides on that.
TEST(PortfolioDeterminism, FixtureSwitchesPoliciesMidRun) {
  World& w = world();
  const ScenarioOutcome outcome = run_scenario(w.base, w.context);
  ASSERT_TRUE(outcome.portfolio.has_value());
  EXPECT_GE(outcome.portfolio->switches.size(), 1u);
  EXPECT_GE(outcome.portfolio->windows_closed, 4u);
}

TEST(PortfolioDeterminism, SelectionSequenceInvariantAcrossThreadCounts) {
  World& w = world();
  auto run_at = [&](std::size_t threads) {
    ThreadPool::set_global_threads(threads);
    WindowedCollector collector(w.base.make_system().core_count(),
                                WindowedOptions{1'000'000, 0},
                                &w.context.suite());
    ScenarioOutcome outcome = run_scenario(w.base, w.context, &collector);
    collector.finalize();
    EXPECT_TRUE(outcome.portfolio.has_value());
    return windows_text(collector) +
           portfolio_switch_jsonl(*outcome.portfolio) + "digest " +
           std::to_string(outcome.stream.digest());
  };
  const std::string at1 = run_at(1);
  const std::string at3 = run_at(3);
  ThreadPool::set_global_threads(ThreadPool::default_threads());
  EXPECT_FALSE(at1.empty());
  EXPECT_EQ(at1, at3);
}

TEST(PortfolioDeterminism, StreamAndBatchAgreeIncludingSwitchEvents) {
  World& w = world();
  const Scenario& s = w.base;

  // Batch: materialise the arrivals, run via run(vector), with the
  // policy built through the registry exactly as the streaming driver
  // builds it.
  const PolicyContext ctx{w.context.predictor(), &w.context.suite(),
                          s.seed};
  std::unique_ptr<SchedulerPolicy> policy =
      PolicyRegistry::instance().make(s.policy, ctx);
  MulticoreSimulator simulator(s.make_system(), w.context.suite(),
                               w.context.energy(), *policy, s.discipline);
  WindowedCollector batch_collector(s.make_system().core_count(),
                                    WindowedOptions{1'000'000, 0},
                                    &w.context.suite());
  simulator.set_observer(&batch_collector);
  Rng rng(s.seed ^ 0xa5a5a5a5ULL);
  const std::vector<JobArrival> arrivals =
      generate_arrivals(w.context.scheduling_ids(), s.arrivals, rng);
  const SimulationResult batch = simulator.run(arrivals);
  batch_collector.finalize();
  const auto* batch_portfolio =
      dynamic_cast<const PortfolioPolicy*>(policy.get());
  ASSERT_NE(batch_portfolio, nullptr);

  WindowedCollector stream_collector(s.make_system().core_count(),
                                     WindowedOptions{1'000'000, 0},
                                     &w.context.suite());
  const ScenarioOutcome streamed =
      run_scenario(s, w.context, &stream_collector);
  stream_collector.finalize();
  ASSERT_TRUE(streamed.portfolio.has_value());

  EXPECT_EQ(batch.completed_jobs, streamed.result.completed_jobs);
  EXPECT_EQ(result_text(batch), result_text(streamed.result));
  EXPECT_EQ(windows_text(batch_collector), windows_text(stream_collector));
  EXPECT_EQ(portfolio_switch_jsonl(batch_portfolio->stats()),
            portfolio_switch_jsonl(*streamed.portfolio));
  EXPECT_EQ(batch_portfolio->stats().windows_active,
            streamed.portfolio->windows_active);
}

// Checkpoint kill-and-resume must rebuild the whole selector state —
// scores, window cursor, switch history, and the seeded contender Rng —
// so the resumed run's outputs and final stats match the uninterrupted
// run byte for byte.
TEST(PortfolioDeterminism, CheckpointKillAndResumeRebuildsSelectorState) {
  World& w = world();
  CheckpointRunOptions options;
  options.window_cycles = 1'000'000;
  options.checkpoint_every = 1;
  std::vector<std::string> checkpoints;
  options.capture_checkpoints = &checkpoints;
  const CheckpointRunOutcome full =
      run_scenario_checkpointed(w.base, w.context, options);
  ASSERT_FALSE(full.halted);
  ASSERT_TRUE(full.portfolio.has_value());
  EXPECT_GE(full.portfolio->switches.size(), 1u);
  ASSERT_GE(checkpoints.size(), 3u);

  const std::string ref_result = result_text(full.result);
  const std::string ref_windows = windows_text(full.windows);
  const std::string ref_switches = portfolio_switch_jsonl(*full.portfolio);

  for (std::size_t k = 0; k < checkpoints.size(); ++k) {
    CheckpointRunOptions resume;
    resume.window_cycles = options.window_cycles;
    resume.checkpoint_every = options.checkpoint_every;
    resume.resume_text = checkpoints[k];
    const CheckpointRunOutcome resumed =
        run_scenario_checkpointed(w.base, w.context, resume);
    ASSERT_FALSE(resumed.halted);
    EXPECT_EQ(resumed.resumed_from, k + 1);
    EXPECT_EQ(resumed.stream.digest(), full.stream.digest())
        << "boundary " << k + 1;
    EXPECT_EQ(result_text(resumed.result), ref_result)
        << "boundary " << k + 1;
    EXPECT_EQ(windows_text(resumed.windows), ref_windows)
        << "boundary " << k + 1;
    ASSERT_TRUE(resumed.portfolio.has_value());
    EXPECT_EQ(portfolio_switch_jsonl(*resumed.portfolio), ref_switches)
        << "boundary " << k + 1;
    EXPECT_EQ(resumed.portfolio->windows_active,
              full.portfolio->windows_active);
    EXPECT_EQ(resumed.portfolio->windows_scored,
              full.portfolio->windows_scored);
    EXPECT_EQ(resumed.portfolio->active, full.portfolio->active);
  }
}

TEST(PortfolioState, RestoreRejectsGarbageAndRosterMismatch) {
  World& w = world();
  const PolicyContext ctx{nullptr, &w.context.suite(), 42};
  const PolicyRegistry& r = PolicyRegistry::instance();

  std::unique_ptr<SchedulerPolicy> saved =
      r.make("portfolio:optimal+sjf", ctx);
  std::ostringstream out;
  saved->save_state(out);

  // Same roster: restores cleanly.
  std::unique_ptr<SchedulerPolicy> same =
      r.make("portfolio:optimal+sjf", ctx);
  std::istringstream ok(out.str());
  same->restore_state(ok, "test");

  // Different roster labels: rejected.
  std::unique_ptr<SchedulerPolicy> other =
      r.make("portfolio:optimal+random", ctx);
  std::istringstream mismatched(out.str());
  EXPECT_THROW(other->restore_state(mismatched, "test"),
               std::runtime_error);

  // Garbage: rejected.
  std::unique_ptr<SchedulerPolicy> fresh =
      r.make("portfolio:optimal+sjf", ctx);
  std::istringstream garbage("definitely not policy state");
  EXPECT_THROW(fresh->restore_state(garbage, "test"), std::runtime_error);
}

// --- Golden scenario -----------------------------------------------------

// portfolio_smoke.scn runs a four-contender portfolio; the checked-in
// window stream (windows + switch events) and deterministic run report
// pin the selector's behaviour, including at least one mid-run switch.
TEST(PortfolioGolden, SmokeScenarioWindowsAndReport) {
  const std::string dir =
      std::string(HETSCHED_SOURCE_DIR) + "/examples/scenarios/";
  std::ifstream in(dir + "portfolio_smoke.scn");
  ASSERT_TRUE(in) << "missing " << dir << "portfolio_smoke.scn";
  const Scenario scenario = Scenario::parse(in);

  const ScenarioContext context(scenario);
  // Mirror the CLI scenario path: span collector ahead of the windowed
  // collector so the goldens pin the lat_* columns and latency section.
  JobSpanCollector spans(scenario.policy, 1'000'000);
  WindowedCollector collector(scenario.make_system().core_count(),
                              WindowedOptions{1'000'000, 0},
                              &context.suite());
  collector.set_span_source(&spans);
  FanoutObserver fanout({&spans, &collector});
  const ScenarioOutcome outcome = run_scenario(scenario, context, &fanout);
  spans.finalize();
  collector.finalize();
  EXPECT_EQ(outcome.stream.invariant_violations(), 0u);
  ASSERT_TRUE(outcome.portfolio.has_value());
  EXPECT_GE(outcome.portfolio->switches.size(), 1u);

  const std::string windows =
      windows_text(collector) + portfolio_switch_jsonl(*outcome.portfolio);
  EXPECT_NE(windows.find("\"event\":\"policy_switch\""), std::string::npos);

  // The deterministic report the CLI would emit for this run (empty
  // phases, metrics from a local registry).
  RunReport report;
  report.command = "scenario";
  report.name = scenario.name;
  report.policy = scenario.policy;
  report.system = std::string(to_string(scenario.system));
  report.discipline = std::string(to_string(scenario.discipline));
  report.cores = scenario.make_system().core_count();
  report.seed = scenario.seed;
  report.jobs = scenario.arrivals.count;
  report.suite_key = suite_cache_key(scenario.suite, context.energy());
  report.completed_jobs = outcome.result.completed_jobs;
  report.makespan = outcome.result.makespan;
  report.total_energy_mj = outcome.result.total_energy().millijoules();
  report.stream_digest = outcome.stream.digest();
  attach_window_summary(report, collector, AnomalyConfig{});
  attach_latency_summary(report, {&spans});
  attach_portfolio_summary(report, *outcome.portfolio);
  MetricsRegistry local;
  record_scenario_metrics(local, scenario.name + ".", outcome);
  report.metrics_json = local.to_json();
  report.include_phases = false;
  const std::string report_json = run_report_to_json(report);

  const std::string windows_path = dir + "portfolio_smoke.windows.jsonl";
  const std::string report_path = dir + "portfolio_smoke.report.json";
  if (std::getenv("HETSCHED_REGEN_GOLDEN") != nullptr) {
    std::ofstream windows_out(windows_path);
    windows_out << windows;
    ASSERT_TRUE(windows_out) << "cannot write " << windows_path;
    std::ofstream report_out(report_path);
    report_out << report_json;
    ASSERT_TRUE(report_out) << "cannot write " << report_path;
    GTEST_SKIP() << "portfolio goldens regenerated in " << dir;
  }

  auto slurp = [](const std::string& path) {
    std::ifstream golden(path);
    std::stringstream buffer;
    buffer << golden.rdbuf();
    return golden ? buffer.str() : std::string();
  };
  const std::string golden_windows = slurp(windows_path);
  ASSERT_FALSE(golden_windows.empty())
      << "missing golden " << windows_path
      << "; regenerate with HETSCHED_REGEN_GOLDEN=1";
  EXPECT_EQ(windows, golden_windows)
      << "portfolio window/switch stream diverged; if intended, "
         "regenerate with HETSCHED_REGEN_GOLDEN=1 and commit";
  const std::string golden_report = slurp(report_path);
  ASSERT_FALSE(golden_report.empty())
      << "missing golden " << report_path
      << "; regenerate with HETSCHED_REGEN_GOLDEN=1";
  EXPECT_EQ(report_json, golden_report)
      << "portfolio run report diverged; if intended, regenerate with "
         "HETSCHED_REGEN_GOLDEN=1 and commit";
}

}  // namespace
}  // namespace hetsched
