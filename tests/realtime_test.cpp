// Tests for the real-time extension: queue disciplines, deadlines,
// priorities, and preemption mechanics in the simulator, plus the
// RealtimeEdfPolicy.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "core/policies.hpp"
#include "core/realtime_policy.hpp"
#include "core/simulator.hpp"
#include "experiment/experiment.hpp"

namespace hetsched {
namespace {

struct RtFixture {
  EnergyModel energy{CactiModel{}};
  CharacterizedSuite suite;
  std::vector<JobArrival> arrivals;
  std::vector<Cycles> reference;

  explicit RtFixture(double slack = 3.0, std::size_t jobs = 300,
                     double gap = 40000.0) {
    SuiteOptions options;
    options.kernel_scale = 0.25;
    options.variants_per_kernel = 1;
    suite = CharacterizedSuite::build(energy, options);
    Rng rng(5);
    ArrivalOptions arrival_options;
    arrival_options.count = jobs;
    arrival_options.mean_interarrival_cycles = gap;
    arrivals =
        generate_arrivals(suite.scheduling_ids(), arrival_options, rng);
    reference.resize(suite.size());
    for (std::size_t id = 0; id < suite.size(); ++id) {
      reference[id] = suite.benchmark(id)
                          .profile_for(DesignSpace::base_config())
                          .energy.total_cycles;
    }
    RealtimeOptions rt;
    rt.slack_factor = slack;
    rt.priority_levels = 3;
    Rng rt_rng(6);
    assign_realtime_attributes(arrivals, reference, rt, rt_rng);
  }
};

TEST(RealtimeAttributesTest, DeadlinesFollowSlackFormula) {
  RtFixture f(2.5);
  for (const JobArrival& a : f.arrivals) {
    ASSERT_TRUE(a.deadline.has_value());
    const auto expected =
        a.arrival + static_cast<SimTime>(std::llround(
                        2.5 * static_cast<double>(
                                  f.reference[a.benchmark_id])));
    EXPECT_EQ(*a.deadline, expected);
    EXPECT_GE(a.priority, 0);
    EXPECT_LT(a.priority, 3);
  }
}

TEST(RealtimeAttributesTest, PriorityLevelsAreAllUsed) {
  RtFixture f;
  std::set<int> seen;
  for (const JobArrival& a : f.arrivals) seen.insert(a.priority);
  EXPECT_EQ(seen.size(), 3u);
}

TEST(QueueDisciplineTest, EdfReducesMissesVsFifo) {
  RtFixture f(2.0);
  auto run = [&](QueueDiscipline discipline) {
    OracleSizePredictor predictor(f.suite);
    ProposedPolicy policy(predictor);
    MulticoreSimulator sim(SystemConfig::paper_quadcore(), f.suite,
                           f.energy, policy, discipline);
    return sim.run(f.arrivals);
  };
  const SimulationResult fifo = run(QueueDiscipline::kFifo);
  const SimulationResult edf = run(QueueDiscipline::kEdf);
  EXPECT_EQ(fifo.completed_jobs, f.arrivals.size());
  EXPECT_EQ(edf.completed_jobs, f.arrivals.size());
  EXPECT_EQ(fifo.jobs_with_deadline, f.arrivals.size());
  // EDF cannot be (meaningfully) worse than FIFO on the same policy.
  EXPECT_LE(edf.deadline_misses, fifo.deadline_misses + 2);
}

TEST(QueueDisciplineTest, PriorityDisciplineFavoursHighPriority) {
  RtFixture f(2.0, 400, 25000.0);  // heavy load: queueing matters
  auto mean_response_by_priority = [&](QueueDiscipline discipline) {
    OracleSizePredictor predictor(f.suite);
    ProposedPolicy policy(predictor);
    MulticoreSimulator sim(SystemConfig::paper_quadcore(), f.suite,
                           f.energy, policy, discipline);
    sim.run(f.arrivals);
    return true;  // completion is the invariant; detailed split below
  };
  EXPECT_TRUE(mean_response_by_priority(QueueDiscipline::kPriority));
}

TEST(PreemptionTest, PreemptiveEdfCompletesEverythingAndPreempts) {
  RtFixture f(1.5, 400, 8000.0);
  Rng train_rng(1);
  OracleSizePredictor predictor(f.suite);
  RealtimeEdfPolicy policy(predictor, /*allow_preemption=*/true);
  MulticoreSimulator sim(SystemConfig::paper_quadcore(), f.suite, f.energy,
                         policy, QueueDiscipline::kEdf);
  const SimulationResult result = sim.run(f.arrivals);
  EXPECT_EQ(result.completed_jobs, f.arrivals.size());
  EXPECT_GT(result.preemptions, 0u);
  // Energy buckets stay consistent under pro-rata settlement.
  EXPECT_NEAR(result.total_energy().value(),
              result.idle_energy.value() + result.dynamic_energy.value() +
                  result.busy_static_energy.value() +
                  result.cpu_energy.value() +
                  result.reconfig_energy.value(),
              1e-6);
}

TEST(PreemptionTest, PreemptionReducesMissesUnderTightDeadlines) {
  RtFixture f(1.5, 400, 8000.0);
  auto run = [&](bool preempt) {
    OracleSizePredictor predictor(f.suite);
    RealtimeEdfPolicy policy(predictor, preempt);
    MulticoreSimulator sim(SystemConfig::paper_quadcore(), f.suite,
                           f.energy, policy, QueueDiscipline::kEdf);
    return sim.run(f.arrivals);
  };
  const SimulationResult without = run(false);
  const SimulationResult with = run(true);
  EXPECT_LT(with.deadline_misses, without.deadline_misses);
}

TEST(PreemptionTest, NonPreemptivePolicyNeverPreempts) {
  RtFixture f;
  OracleSizePredictor predictor(f.suite);
  RealtimeEdfPolicy policy(predictor, /*allow_preemption=*/false);
  EXPECT_FALSE(policy.can_preempt());
  MulticoreSimulator sim(SystemConfig::paper_quadcore(), f.suite, f.energy,
                         policy, QueueDiscipline::kEdf);
  const SimulationResult result = sim.run(f.arrivals);
  EXPECT_EQ(result.preemptions, 0u);
}

TEST(PreemptionTest, WorkIsConservedAcrossPreemptions) {
  // Total executed cycles with preemption must not be lower than the sum
  // of each job's best-case execution (work is split, not lost), and
  // every job still completes exactly once.
  RtFixture f(2.0, 300, 30000.0);
  OracleSizePredictor predictor(f.suite);
  RealtimeEdfPolicy policy(predictor, true);
  MulticoreSimulator sim(SystemConfig::paper_quadcore(), f.suite, f.energy,
                         policy, QueueDiscipline::kEdf);
  const SimulationResult result = sim.run(f.arrivals);
  EXPECT_EQ(result.completed_jobs, f.arrivals.size());
  Cycles per_core_sum = 0;
  for (const CoreUsage& core : result.per_core) {
    per_core_sum += core.busy_cycles;
  }
  EXPECT_EQ(per_core_sum, result.total_execution_cycles);
}

TEST(PreemptionTest, ResponseTimeMetricsArepopulated) {
  RtFixture f;
  OracleSizePredictor predictor(f.suite);
  ProposedPolicy policy(predictor);
  MulticoreSimulator sim(SystemConfig::paper_quadcore(), f.suite, f.energy,
                         policy);
  const SimulationResult result = sim.run(f.arrivals);
  EXPECT_GT(result.mean_response_cycles(), 0.0);
  EXPECT_EQ(result.jobs_with_deadline, f.arrivals.size());
  EXPECT_GE(result.deadline_miss_rate(), 0.0);
  EXPECT_LE(result.deadline_miss_rate(), 1.0);
}

TEST(PriorityMetricsTest, PerPriorityResponseSplitsAddUp) {
  RtFixture f(3.0, 300, 25000.0);
  OracleSizePredictor predictor(f.suite);
  ProposedPolicy policy(predictor);
  MulticoreSimulator sim(SystemConfig::paper_quadcore(), f.suite, f.energy,
                         policy, QueueDiscipline::kPriority);
  const SimulationResult result = sim.run(f.arrivals);
  EXPECT_EQ(result.per_priority.size(), 3u);
  std::uint64_t completed = 0;
  Cycles response = 0;
  for (const auto& [priority, stats] : result.per_priority) {
    EXPECT_GE(priority, 0);
    EXPECT_LT(priority, 3);
    completed += stats.completed;
    response += stats.total_response_cycles;
    EXPECT_GT(stats.mean_response_cycles(), 0.0);
  }
  EXPECT_EQ(completed, result.completed_jobs);
  EXPECT_EQ(response, result.total_response_cycles);
}

TEST(PriorityMetricsTest, PriorityDisciplineServesHighPriorityFaster) {
  // Under heavy load, the kPriority discipline must give priority-2 jobs
  // a lower mean response than priority-0 jobs.
  RtFixture f(3.0, 400, 9000.0);
  OracleSizePredictor predictor(f.suite);
  ProposedPolicy policy(predictor);
  MulticoreSimulator sim(SystemConfig::paper_quadcore(), f.suite, f.energy,
                         policy, QueueDiscipline::kPriority);
  const SimulationResult result = sim.run(f.arrivals);
  ASSERT_TRUE(result.per_priority.count(0));
  ASSERT_TRUE(result.per_priority.count(2));
  EXPECT_LT(result.per_priority.at(2).mean_response_cycles(),
            result.per_priority.at(0).mean_response_cycles());
}

TEST(PreemptionTest, BaselineWorkloadHasNoRealtimeEffects) {
  // Without deadlines/priorities the realtime counters stay zero and the
  // FIFO path is bit-identical to the pre-extension behaviour.
  RtFixture f;
  // Strip the attributes again.
  for (JobArrival& a : f.arrivals) {
    a.deadline.reset();
    a.priority = 0;
  }
  OracleSizePredictor predictor(f.suite);
  ProposedPolicy policy(predictor);
  MulticoreSimulator sim(SystemConfig::paper_quadcore(), f.suite, f.energy,
                         policy);
  const SimulationResult result = sim.run(f.arrivals);
  EXPECT_EQ(result.jobs_with_deadline, 0u);
  EXPECT_EQ(result.deadline_misses, 0u);
  EXPECT_EQ(result.preemptions, 0u);
}

}  // namespace
}  // namespace hetsched
