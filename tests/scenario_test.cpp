// Scenario engine: description-file round trips, streaming-vs-batch
// equivalence, schedule/energy property checks over randomised
// scenarios, sweep thread/shard invariance, and the golden end-to-end
// scenario (ctest label: integration).
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/policies.hpp"
#include "core/schedule_log.hpp"
#include "experiment/experiment.hpp"
#include "experiment/sweep.hpp"
#include "obs/observability.hpp"
#include "scenario/scenario_runner.hpp"
#include "util/thread_pool.hpp"

namespace hetsched {
namespace {

// One suite build + one ANN training shared by every test in this file.
struct World {
  Scenario base;
  ScenarioContext context;
};

World& world() {
  static World* w = [] {
    Scenario s;
    s.name = "fixture";
    s.system = Scenario::SystemKind::kScaledHeterogeneous;
    s.cores = 4;
    s.policy = "proposed";
    s.seed = 42;
    s.arrivals.count = 250;
    s.arrivals.mean_interarrival_cycles = 40000.0;
    s.suite.kernel_scale = 0.25;
    s.suite.variants_per_kernel = 1;
    s.predictor_ensemble = 5;
    s.predictor_max_epochs = 120;
    return new World{s, ScenarioContext(s)};
  }();
  return *w;
}

void expect_same_result(const SimulationResult& a, const SimulationResult& b,
                        const std::string& what) {
  EXPECT_EQ(a.idle_energy.value(), b.idle_energy.value()) << what;
  EXPECT_EQ(a.dynamic_energy.value(), b.dynamic_energy.value()) << what;
  EXPECT_EQ(a.busy_static_energy.value(), b.busy_static_energy.value())
      << what;
  EXPECT_EQ(a.cpu_energy.value(), b.cpu_energy.value()) << what;
  EXPECT_EQ(a.reconfig_energy.value(), b.reconfig_energy.value()) << what;
  EXPECT_EQ(a.profiling_energy.value(), b.profiling_energy.value()) << what;
  EXPECT_EQ(a.tuning_energy.value(), b.tuning_energy.value()) << what;
  EXPECT_EQ(a.makespan, b.makespan) << what;
  EXPECT_EQ(a.total_execution_cycles, b.total_execution_cycles) << what;
  EXPECT_EQ(a.completed_jobs, b.completed_jobs) << what;
  EXPECT_EQ(a.stall_events, b.stall_events) << what;
  EXPECT_EQ(a.profiling_runs, b.profiling_runs) << what;
  EXPECT_EQ(a.tuning_runs, b.tuning_runs) << what;
  EXPECT_EQ(a.reconfigurations, b.reconfigurations) << what;
  EXPECT_EQ(a.preemptions, b.preemptions) << what;
  EXPECT_EQ(a.jobs_with_deadline, b.jobs_with_deadline) << what;
  EXPECT_EQ(a.deadline_misses, b.deadline_misses) << what;
  EXPECT_EQ(a.total_response_cycles, b.total_response_cycles) << what;
  EXPECT_EQ(a.faults.injected, b.faults.injected) << what;
  ASSERT_EQ(a.per_core.size(), b.per_core.size()) << what;
  for (std::size_t core = 0; core < a.per_core.size(); ++core) {
    EXPECT_EQ(a.per_core[core].busy_cycles, b.per_core[core].busy_cycles)
        << what << " core " << core;
    EXPECT_EQ(a.per_core[core].executions, b.per_core[core].executions)
        << what << " core " << core;
  }
}

TEST(Scenario, SaveParseRoundTrip) {
  Scenario s;
  s.name = "round-trip";
  s.system = Scenario::SystemKind::kFixedBase;
  s.cores = 7;
  s.policy = "energy-centric";
  s.discipline = QueueDiscipline::kEdf;
  s.seed = 977;
  s.arrivals.count = 1234;
  s.arrivals.mean_interarrival_cycles = 41234.56789012345;
  s.arrivals.distribution = InterarrivalDistribution::kExponential;
  s.arrivals.burstiness = 2.5;
  s.arrivals.phase_switch = 0.07;
  s.suite.kernel_scale = 0.33;
  s.suite.variants_per_kernel = 3;
  s.suite.include_extended = true;
  s.predictor_ensemble = 9;
  s.predictor_max_epochs = 55;
  RealtimeOptions rt;
  rt.slack_factor = 1.75;
  rt.priority_levels = 4;
  s.realtime = rt;
  s.faults.reconfig_failure_rate = 0.125;
  s.faults.stuck_job_rate = 0.125;
  s.faults.counter_corruption_rate = 0.125;
  s.faults.seed = 9;
  CoreFaultEvent fail;
  fail.fail = true;
  fail.core = 2;
  fail.at = 100000;
  CoreFaultEvent recover = fail;
  recover.fail = false;
  recover.at = 400000;
  s.faults.core_events = {fail, recover};

  std::ostringstream first;
  s.save(first);
  std::istringstream in(first.str());
  const Scenario parsed = Scenario::parse(in);
  std::ostringstream second;
  parsed.save(second);
  EXPECT_EQ(first.str(), second.str());

  EXPECT_EQ(parsed.name, s.name);
  EXPECT_EQ(parsed.cores, s.cores);
  EXPECT_EQ(parsed.policy, s.policy);
  EXPECT_EQ(parsed.discipline, s.discipline);
  EXPECT_EQ(parsed.seed, s.seed);
  EXPECT_EQ(parsed.arrivals.count, s.arrivals.count);
  // precision(17) must round-trip doubles exactly.
  EXPECT_EQ(parsed.arrivals.mean_interarrival_cycles,
            s.arrivals.mean_interarrival_cycles);
  EXPECT_EQ(parsed.arrivals.burstiness, s.arrivals.burstiness);
  EXPECT_EQ(parsed.suite.kernel_scale, s.suite.kernel_scale);
  ASSERT_TRUE(parsed.realtime.has_value());
  EXPECT_EQ(parsed.realtime->slack_factor, rt.slack_factor);
  EXPECT_EQ(parsed.realtime->priority_levels, rt.priority_levels);
  EXPECT_EQ(parsed.faults.reconfig_failure_rate, 0.125);
  ASSERT_EQ(parsed.faults.core_events.size(), 2u);
  EXPECT_EQ(parsed.faults.core_events[1].at, recover.at);
}

TEST(Scenario, ParseRejectsMalformedInput) {
  auto parse = [](const std::string& text) {
    std::istringstream in(text);
    return Scenario::parse(in);
  };
  EXPECT_THROW(parse("bogus 1\n"), std::runtime_error);
  EXPECT_THROW(parse("cores 0\n"), std::runtime_error);
  EXPECT_THROW(parse("cores 4 garbage\n"), std::runtime_error);
  EXPECT_THROW(parse("policy sched-o-matic\n"), std::runtime_error);
  // Validation failures surface as parse errors too.
  EXPECT_THROW(parse("system paper\ncores 6\n"), std::runtime_error);
  EXPECT_THROW(parse("cores 4\nfail 9 1000\n"), std::runtime_error);
  // Comments and blank lines are fine.
  EXPECT_NO_THROW(parse("# comment\n\nname ok # trailing comment\n"));
}

// Structural dep errors are attributed to the offending source line;
// arity errors fire immediately on their own line.
TEST(Scenario, ParseRejectsBadDepEdgesWithLineNumbers) {
  auto parse_error = [](const std::string& text) {
    std::istringstream in(text);
    try {
      (void)Scenario::parse(in);
      return std::string("(no error)");
    } catch (const std::runtime_error& e) {
      return std::string(e.what());
    }
  };

  // Missing successor index: rejected at line 3.
  EXPECT_NE(parse_error("name x\njobs 4\ndep 0\n").find("scenario line 3"),
            std::string::npos);
  // Out-of-range job id (jobs run 0..3): line 4.
  {
    const std::string what = parse_error("name x\njobs 4\ndep 0 1\ndep 2 9\n");
    EXPECT_NE(what.find("scenario line 4"), std::string::npos) << what;
    EXPECT_NE(what.find("out of range"), std::string::npos) << what;
  }
  // Self dependency (one job id repeated in an edge): line 3.
  {
    const std::string what = parse_error("name x\njobs 4\ndep 3 3\n");
    EXPECT_NE(what.find("scenario line 3"), std::string::npos) << what;
    EXPECT_NE(what.find("repeats job 3"), std::string::npos) << what;
  }
  // Duplicate edge: blamed on the second copy, line 5.
  {
    const std::string what =
        parse_error("name x\njobs 4\ndep 0 1\ndep 1 2\ndep 0 1\n");
    EXPECT_NE(what.find("scenario line 5"), std::string::npos) << what;
    EXPECT_NE(what.find("duplicate dep 0 -> 1"), std::string::npos) << what;
  }
  // Cycle: blamed on an edge of the cycle, with the job named.
  {
    const std::string what =
        parse_error("name x\njobs 4\ndep 0 1\ndep 1 2\ndep 2 0\n");
    EXPECT_NE(what.find("scenario line"), std::string::npos) << what;
    EXPECT_NE(what.find("cycle"), std::string::npos) << what;
  }
  // A well-formed DAG parses.
  EXPECT_NO_THROW(parse_error("name x\njobs 4\ndep 0 1\ndep 0 2\ndep 1 3\n"));
}

TEST(Scenario, DepEdgesSurviveSaveParseRoundTrip) {
  Scenario s;
  s.name = "dag-round-trip";
  s.arrivals.count = 5;
  s.dag.edges = {{0, 2}, {1, 2}, {2, 4}, {3, 4}};

  std::ostringstream first;
  s.save(first);
  EXPECT_NE(first.str().find("dep 0 2"), std::string::npos);
  std::istringstream in(first.str());
  const Scenario parsed = Scenario::parse(in);
  ASSERT_EQ(parsed.dag.edges.size(), s.dag.edges.size());
  for (std::size_t i = 0; i < s.dag.edges.size(); ++i) {
    EXPECT_EQ(parsed.dag.edges[i].from, s.dag.edges[i].from) << i;
    EXPECT_EQ(parsed.dag.edges[i].to, s.dag.edges[i].to) << i;
  }
  std::ostringstream second;
  parsed.save(second);
  EXPECT_EQ(first.str(), second.str());
}

void expect_stream_matches_batch(const ArrivalOptions& options,
                                 std::uint64_t seed) {
  const std::vector<std::size_t> ids = {0, 1, 2, 5, 9};
  Rng rng(seed);
  const std::vector<JobArrival> batch = generate_arrivals(ids, options, rng);

  GeneratedArrivalStream stream(ids, options, seed);
  std::vector<JobArrival> streamed;
  while (true) {
    const std::optional<JobArrival> next = stream.next();
    if (!next.has_value()) break;
    streamed.push_back(*next);
  }
  EXPECT_FALSE(stream.next().has_value());  // exhaustion is sticky

  ASSERT_EQ(streamed.size(), batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(streamed[i].benchmark_id, batch[i].benchmark_id) << i;
    EXPECT_EQ(streamed[i].arrival, batch[i].arrival) << i;
    if (i > 0) {
      EXPECT_GE(streamed[i].arrival, streamed[i - 1].arrival) << i;
    }
  }
}

TEST(ArrivalStream, MatchesBatchGenerationBitForBit) {
  ArrivalOptions options;
  options.count = 500;
  options.mean_interarrival_cycles = 30000.0;
  for (const InterarrivalDistribution dist :
       {InterarrivalDistribution::kUniform,
        InterarrivalDistribution::kExponential,
        InterarrivalDistribution::kFixed}) {
    options.distribution = dist;
    options.burstiness = 1.0;
    expect_stream_matches_batch(options, 42);
    options.burstiness = 3.0;
    options.phase_switch = 0.1;
    expect_stream_matches_batch(options, 1234567);
  }
}

TEST(ArrivalStream, RealtimeAttributesMatchBatchAssignment) {
  const std::vector<std::size_t> ids = {0, 1, 2, 5, 9};
  ArrivalOptions options;
  options.count = 300;
  options.mean_interarrival_cycles = 25000.0;
  std::vector<Cycles> reference(10, 0);
  for (std::size_t id = 0; id < reference.size(); ++id) {
    reference[id] = 10000 + 1000 * id;
  }
  RealtimeOptions rt;
  rt.slack_factor = 2.5;
  rt.priority_levels = 3;

  Rng arrival_rng(7);
  std::vector<JobArrival> batch = generate_arrivals(ids, options, arrival_rng);
  Rng rt_rng(99);
  assign_realtime_attributes(batch, reference, rt, rt_rng);

  GeneratedArrivalStream stream(ids, options, 7);
  stream.set_realtime(reference, rt, 99);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const std::optional<JobArrival> next = stream.next();
    ASSERT_TRUE(next.has_value()) << i;
    EXPECT_EQ(next->arrival, batch[i].arrival) << i;
    EXPECT_EQ(next->priority, batch[i].priority) << i;
    ASSERT_EQ(next->deadline.has_value(), batch[i].deadline.has_value()) << i;
    if (next->deadline.has_value()) {
      EXPECT_EQ(*next->deadline, *batch[i].deadline) << i;
    }
  }
  EXPECT_FALSE(stream.next().has_value());
}

TEST(ScenarioRunner, StreamingRunMatchesBatchRun) {
  World& w = world();
  const Scenario& s = w.base;

  // Batch reference: materialise the whole stream, run via run(vector).
  ProposedPolicy policy(*w.context.predictor());
  MulticoreSimulator simulator(s.make_system(), w.context.suite(),
                               w.context.energy(), policy, s.discipline);
  StreamStats batch_stats(s.cores);
  simulator.set_observer(&batch_stats);
  Rng rng(s.seed ^ 0xa5a5a5a5ULL);
  const std::vector<JobArrival> arrivals =
      generate_arrivals(w.context.scheduling_ids(), s.arrivals, rng);
  const SimulationResult batch = simulator.run(arrivals);

  const ScenarioOutcome streamed = run_scenario(s, w.context);
  expect_same_result(batch, streamed.result, "stream-vs-batch");
  EXPECT_EQ(batch_stats.digest(), streamed.stream.digest());
  EXPECT_EQ(streamed.stream.invariant_violations(), 0u);
}

TEST(ScenarioRunner, RandomScenarioInvariants) {
  World& w = world();
  const std::vector<std::string> policies = {"base", "optimal", "proposed",
                                             "energy-centric"};
  const InterarrivalDistribution distributions[] = {
      InterarrivalDistribution::kUniform,
      InterarrivalDistribution::kExponential,
      InterarrivalDistribution::kFixed};
  Rng rng(20260807);
  for (int i = 0; i < 6; ++i) {
    Scenario s = w.base;
    s.name = "prop" + std::to_string(i);
    s.cores = 2 + static_cast<std::size_t>(rng.below(9));  // 2..10
    s.policy = policies[rng.below(policies.size())];
    s.system = s.policy == "base"
                   ? Scenario::SystemKind::kFixedBase
                   : Scenario::SystemKind::kScaledHeterogeneous;
    s.seed = rng.next();
    s.arrivals.count = 150 + static_cast<std::size_t>(rng.below(200));
    s.arrivals.mean_interarrival_cycles = rng.uniform(20000.0, 80000.0);
    s.arrivals.distribution = distributions[rng.below(3)];
    s.arrivals.burstiness = rng.uniform(1.0, 4.0);
    s.arrivals.phase_switch = rng.uniform(0.0, 0.2);

    const ScenarioOutcome outcome = run_scenario(s, w.context);
    const StreamStats& stream = outcome.stream;
    const SimulationResult& result = outcome.result;

    // No core ever runs two jobs at once (and every slice is well
    // formed): the incremental checker saw nothing.
    EXPECT_EQ(stream.invariant_violations(), 0u) << s.name;
    // Every admitted job completes in a fault-free scenario, each with
    // exactly one completing slice.
    EXPECT_EQ(result.completed_jobs, s.arrivals.count) << s.name;
    EXPECT_EQ(stream.completed_slices(), result.completed_jobs) << s.name;

    // Per-core cycle accounting closes: the compacted aggregates agree
    // with the simulator's own books, and with no faults (hence no
    // retry backoff) every online core is either busy or idle for the
    // whole run.
    ASSERT_EQ(stream.per_core().size(), s.cores) << s.name;
    ASSERT_EQ(result.per_core.size(), s.cores) << s.name;
    Cycles busy_total = 0;
    for (std::size_t core = 0; core < s.cores; ++core) {
      const StreamStats::CoreAggregate& agg = stream.per_core()[core];
      EXPECT_EQ(agg.busy_cycles, result.per_core[core].busy_cycles)
          << s.name << " core " << core;
      EXPECT_EQ(agg.busy_cycles + agg.idle_cycles, result.makespan)
          << s.name << " core " << core;
      busy_total += agg.busy_cycles;
    }
    EXPECT_EQ(busy_total, result.total_execution_cycles) << s.name;
    EXPECT_EQ(stream.busy_cycles(), result.total_execution_cycles) << s.name;
  }
}

TEST(ScenarioRunner, EnergyMatchesPerSliceRecomputation) {
  World& w = world();
  const Scenario& s = w.base;

  ProposedPolicy policy(*w.context.predictor());
  MulticoreSimulator simulator(s.make_system(), w.context.suite(),
                               w.context.energy(), policy, s.discipline);
  ScheduleLog log;
  simulator.set_observer(&log);
  Rng rng(s.seed ^ 0xa5a5a5a5ULL);
  const SimulationResult result = simulator.run(
      generate_arrivals(w.context.scheduling_ids(), s.arrivals, rng));
  ASSERT_TRUE(log.well_formed());
  ASSERT_FALSE(log.slices().empty());

  // Replay the simulator's settlement arithmetic per retained slice, in
  // slice order: portion = slice cycles / characterised total cycles,
  // energy = characterised bucket * portion. Same operands, same
  // accumulation order => the totals must match bit for bit.
  NanoJoules dynamic, busy_static, cpu;
  for (const ScheduledSlice& slice : log.slices()) {
    const ConfigProfile& cp = w.context.suite()
                                  .benchmark(slice.benchmark_id)
                                  .profile_for(slice.config);
    const double portion = static_cast<double>(slice.end - slice.start) /
                           static_cast<double>(cp.energy.total_cycles);
    dynamic += cp.energy.dynamic_energy * portion;
    busy_static += cp.energy.static_energy * portion;
    cpu += cp.energy.cpu_energy * portion;
  }
  EXPECT_EQ(dynamic.value(), result.dynamic_energy.value());
  EXPECT_EQ(busy_static.value(), result.busy_static_energy.value());
  EXPECT_EQ(cpu.value(), result.cpu_energy.value());
}

TEST(Sweep, ResultsAreThreadAndShardInvariant) {
  World& w = world();
  SweepGrid grid;
  grid.base = w.base;
  grid.base.arrivals.count = 120;
  grid.core_counts = {2, 4};
  grid.mean_gaps = {30000.0, 60000.0};
  grid.policies = {"base", "proposed"};

  const auto snapshot = [&](std::size_t threads, std::size_t shards) {
    ThreadPool pool(threads);
    const std::vector<SweepCell> cells =
        run_sweep(grid, w.context, shards, pool);
    MetricsRegistry metrics;
    record_sweep_metrics(metrics, "sweep.", cells);
    std::ostringstream json;
    metrics.write_json(json);
    return json.str();
  };

  // The merged grid must be byte-identical for every (thread count,
  // shard count) combination — the scale-out contract of the sweep.
  const std::string reference = snapshot(1, 1);
  EXPECT_FALSE(reference.empty());
  EXPECT_EQ(reference, snapshot(4, 2));
  EXPECT_EQ(reference, snapshot(8, 8));
  EXPECT_EQ(reference, snapshot(2, grid.cell_count()));
}

TEST(Scenario, GoldenStreamingSmokeScenario) {
  const std::string dir =
      std::string(HETSCHED_SOURCE_DIR) + "/examples/scenarios/";
  std::ifstream in(dir + "streaming_smoke.scn");
  ASSERT_TRUE(in) << "missing " << dir << "streaming_smoke.scn";
  const Scenario scenario = Scenario::parse(in);
  EXPECT_EQ(scenario.name, "streaming-smoke");
  EXPECT_EQ(scenario.cores, 6u);

  const ScenarioContext context(scenario);
  const ScenarioOutcome outcome = run_scenario(scenario, context);
  EXPECT_EQ(outcome.stream.invariant_violations(), 0u);
  MetricsRegistry metrics;
  record_scenario_metrics(metrics, scenario.name + ".", outcome);
  std::ostringstream json;
  metrics.write_json(json);

  const std::string golden_path = dir + "streaming_smoke.metrics.json";
  if (std::getenv("HETSCHED_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(golden_path);
    out << json.str();
    ASSERT_TRUE(out) << "cannot write " << golden_path;
    GTEST_SKIP() << "golden snapshot regenerated at " << golden_path;
  }
  std::ifstream golden_in(golden_path);
  ASSERT_TRUE(golden_in) << "missing golden snapshot " << golden_path
                         << "; regenerate with HETSCHED_REGEN_GOLDEN=1";
  std::stringstream golden;
  golden << golden_in.rdbuf();
  EXPECT_EQ(json.str(), golden.str())
      << "metrics diverged from the checked-in snapshot; if the change "
         "is intended, regenerate with HETSCHED_REGEN_GOLDEN=1 and "
         "commit the new snapshot";
}

// Regression for the latent 4-core assumptions the scenario work
// removed: the Experiment harness itself must run end-to-end on a
// non-paper core count.
TEST(ExperimentCoreCount, SixCoreSystemsRunAllPolicies) {
  ExperimentOptions options = ExperimentOptions::quick();
  options.suite.variants_per_kernel = 1;
  options.arrivals.count = 150;
  options.core_count = 6;
  const Experiment experiment(options);

  for (const SystemRun& run :
       {experiment.run_base(), experiment.run_optimal(),
        experiment.run_proposed()}) {
    EXPECT_EQ(run.result.per_core.size(), 6u) << run.name;
    EXPECT_EQ(run.result.completed_jobs, 150u) << run.name;
  }
}

}  // namespace
}  // namespace hetsched
