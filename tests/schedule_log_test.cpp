// Tests for the schedule observer: slice integrity against the
// simulator's own accounting, overlap invariants, and CSV export.
#include <gtest/gtest.h>

#include <sstream>

#include "core/realtime_policy.hpp"
#include "core/schedule_log.hpp"
#include "core/simulator.hpp"
#include "experiment/experiment.hpp"

namespace hetsched {
namespace {

struct LogFixture {
  EnergyModel energy{CactiModel{}};
  CharacterizedSuite suite;
  std::vector<JobArrival> arrivals;

  LogFixture() {
    SuiteOptions options;
    options.kernel_scale = 0.25;
    options.variants_per_kernel = 1;
    suite = CharacterizedSuite::build(energy, options);
    Rng rng(77);
    ArrivalOptions arrival_options;
    arrival_options.count = 250;
    arrival_options.mean_interarrival_cycles = 40000.0;
    arrivals =
        generate_arrivals(suite.scheduling_ids(), arrival_options, rng);
  }
};

TEST(ScheduleLogTest, SlicesMatchSimulatorAccounting) {
  LogFixture f;
  OracleSizePredictor predictor(f.suite);
  ProposedPolicy policy(predictor);
  MulticoreSimulator sim(SystemConfig::paper_quadcore(), f.suite, f.energy,
                         policy);
  ScheduleLog log;
  sim.set_observer(&log);
  const SimulationResult result = sim.run(f.arrivals);

  EXPECT_TRUE(log.well_formed());
  // One completed slice per job (no preemption under this policy).
  std::size_t completed = 0;
  for (const ScheduledSlice& slice : log.slices()) {
    if (slice.completed) ++completed;
  }
  EXPECT_EQ(completed, result.completed_jobs);

  // Busy cycles reconstructed from slices equal the simulator's own sums.
  const auto busy = log.busy_cycles(4);
  for (std::size_t core = 0; core < 4; ++core) {
    EXPECT_EQ(busy[core], result.per_core[core].busy_cycles);
  }
}

TEST(ScheduleLogTest, PreemptedSlicesAreMarked) {
  LogFixture f;
  // Tight deadlines + heavy load to force preemptions.
  std::vector<Cycles> reference(f.suite.size(), 0);
  for (std::size_t id = 0; id < f.suite.size(); ++id) {
    reference[id] = f.suite.benchmark(id)
                        .profile_for(DesignSpace::base_config())
                        .energy.total_cycles;
  }
  Rng rng(9);
  ArrivalOptions arrival_options;
  arrival_options.count = 400;
  arrival_options.mean_interarrival_cycles = 8000.0;
  auto arrivals =
      generate_arrivals(f.suite.scheduling_ids(), arrival_options, rng);
  RealtimeOptions rt;
  rt.slack_factor = 1.5;
  assign_realtime_attributes(arrivals, reference, rt, rng);

  OracleSizePredictor predictor(f.suite);
  RealtimeEdfPolicy policy(predictor, true);
  MulticoreSimulator sim(SystemConfig::paper_quadcore(), f.suite, f.energy,
                         policy, QueueDiscipline::kEdf);
  ScheduleLog log;
  sim.set_observer(&log);
  const SimulationResult result = sim.run(arrivals);

  ASSERT_GT(result.preemptions, 0u);
  EXPECT_TRUE(log.well_formed());
  std::size_t preempted_slices = 0;
  for (const ScheduledSlice& slice : log.slices()) {
    if (!slice.completed) ++preempted_slices;
  }
  EXPECT_EQ(preempted_slices, result.preemptions);
}

TEST(ScheduleLogTest, CsvExportHasHeaderAndRows) {
  LogFixture f;
  BasePolicy policy;
  MulticoreSimulator sim(SystemConfig::fixed_base(4), f.suite, f.energy,
                         policy);
  ScheduleLog log;
  sim.set_observer(&log);
  sim.run(f.arrivals);

  std::stringstream out;
  log.write_csv(out);
  std::string line;
  ASSERT_TRUE(std::getline(out, line));
  EXPECT_EQ(line, "job,benchmark,core,start,end,config,kind,completed");
  std::size_t rows = 0;
  while (std::getline(out, line)) ++rows;
  EXPECT_EQ(rows, log.slices().size());
  EXPECT_EQ(rows, f.arrivals.size());
}

// Golden export: a hand-built log must serialise to exactly these bytes
// (external Gantt tooling parses this format).
TEST(ScheduleLogTest, CsvExportGolden) {
  ScheduleLog log;
  log.on_slice(ScheduledSlice{7, 3, 1, 100, 250, {2048, 1, 16},
                              ExecutionKind::kNormal, true});
  log.on_slice(ScheduledSlice{8, 4, 0, 120, 180, {8192, 4, 64},
                              ExecutionKind::kProfiling, false});
  std::stringstream out;
  log.write_csv(out);
  EXPECT_EQ(out.str(),
            "job,benchmark,core,start,end,config,kind,completed\n"
            "7,3,1,100,250,2KB_1W_16B,normal,1\n"
            "8,4,0,120,180,8KB_4W_64B,profiling,0\n");
}

TEST(ScheduleLogTest, FaultCsvExportGolden) {
  ScheduleLog log;
  log.on_fault(FaultRecord{500, 2, 11, FaultRecord::Kind::kWatchdogFire});
  log.on_fault(
      FaultRecord{900, 0, 0, FaultRecord::Kind::kCounterCorruption});
  std::stringstream out;
  log.write_fault_csv(out);
  EXPECT_EQ(out.str(),
            "time,core,job,kind\n"
            "500,2,11,watchdog-fire\n"
            "900,0,0,counter-corruption\n");
}

TEST(ScheduleLogTest, BusyCyclesRejectsUnknownCore) {
  ScheduleLog log;
  log.on_slice(ScheduledSlice{0, 0, 5, 100, 200, {2048, 1, 16},
                              ExecutionKind::kNormal, true});
  // A slice on core 5 with core_count 4 is an accounting bug, not data
  // to be silently dropped.
  EXPECT_DEATH(log.busy_cycles(4), "precondition");
  const auto busy = log.busy_cycles(6);
  EXPECT_EQ(busy[5], 100u);
}

TEST(ScheduleLogTest, WellFormedDetectsOverlap) {
  ScheduleLog log;
  log.on_slice(ScheduledSlice{0, 0, 0, 100, 200, {2048, 1, 16},
                              ExecutionKind::kNormal, true});
  log.on_slice(ScheduledSlice{1, 0, 0, 150, 250, {2048, 1, 16},
                              ExecutionKind::kNormal, true});
  EXPECT_FALSE(log.well_formed());
}

TEST(ScheduleLogTest, WellFormedDetectsEmptySlice) {
  ScheduleLog log;
  log.on_slice(ScheduledSlice{0, 0, 0, 100, 100, {2048, 1, 16},
                              ExecutionKind::kNormal, true});
  EXPECT_FALSE(log.well_formed());
}

}  // namespace
}  // namespace hetsched
