// Tests for predictor persistence: bit-exact round trips, prediction
// equivalence, and rejection of malformed inputs.
#include <gtest/gtest.h>

#include <sstream>

#include "core/serialization.hpp"
#include "experiment/experiment.hpp"

namespace hetsched {
namespace {

struct Trained {
  CharacterizedSuite suite;
  std::unique_ptr<BestSizePredictor> predictor;
};

const Trained& trained() {
  static const Trained t = [] {
    SuiteOptions suite_options;
    suite_options.kernel_scale = 0.25;
    suite_options.variants_per_kernel = 3;
    Trained out;
    out.suite =
        CharacterizedSuite::build(EnergyModel{CactiModel{}}, suite_options);
    const Dataset data = build_ann_dataset(out.suite, {});
    PredictorConfig config;
    config.ensemble_size = 4;
    config.trainer.max_epochs = 120;
    Rng rng(21);
    out.predictor =
        std::make_unique<BestSizePredictor>(data, config, rng);
    return out;
  }();
  return t;
}

TEST(SerializationTest, SnapshotMatchesLivePredictor) {
  const Trained& t = trained();
  const PredictorSnapshot snapshot = PredictorSnapshot::from(*t.predictor);
  EXPECT_EQ(snapshot.member_count(), 4u);
  for (std::size_t id = 0; id < t.suite.size(); ++id) {
    const auto& stats = t.suite.benchmark(id).base_statistics;
    EXPECT_DOUBLE_EQ(snapshot.predict_raw(stats),
                     t.predictor->predict_raw(stats));
    EXPECT_EQ(snapshot.predict(id, stats),
              t.predictor->predict_size_bytes(stats));
  }
}

TEST(SerializationTest, SaveLoadRoundTripIsBitExact) {
  const Trained& t = trained();
  const PredictorSnapshot snapshot = PredictorSnapshot::from(*t.predictor);

  std::stringstream stream;
  snapshot.save(stream);
  const PredictorSnapshot loaded = PredictorSnapshot::load(stream);

  EXPECT_EQ(loaded.member_count(), snapshot.member_count());
  EXPECT_EQ(loaded.selected_features().indices,
            snapshot.selected_features().indices);
  for (std::size_t id = 0; id < t.suite.size(); ++id) {
    const auto& stats = t.suite.benchmark(id).base_statistics;
    EXPECT_DOUBLE_EQ(loaded.predict_raw(stats),
                     snapshot.predict_raw(stats))
        << t.suite.benchmark(id).instance.name;
  }
}

TEST(SerializationTest, SecondSaveIsByteIdentical) {
  const Trained& t = trained();
  const PredictorSnapshot snapshot = PredictorSnapshot::from(*t.predictor);
  std::stringstream a, b;
  snapshot.save(a);
  PredictorSnapshot::load(a).save(b);
  EXPECT_EQ(a.str(), b.str());
}

TEST(SerializationTest, RejectsBadHeader) {
  std::stringstream in("not-a-predictor v1\n");
  EXPECT_THROW(PredictorSnapshot::load(in), std::runtime_error);
  std::stringstream wrong_version("hetsched-predictor v999\n");
  EXPECT_THROW(PredictorSnapshot::load(wrong_version), std::runtime_error);
}

TEST(SerializationTest, RejectsTruncatedStream) {
  const Trained& t = trained();
  std::stringstream full;
  PredictorSnapshot::from(*t.predictor).save(full);
  const std::string text = full.str();
  std::stringstream truncated(text.substr(0, text.size() / 2));
  EXPECT_THROW(PredictorSnapshot::load(truncated), std::runtime_error);
}

TEST(SerializationTest, RejectsOutOfRangeFeatureIndex) {
  std::stringstream in("hetsched-predictor v1\nfeatures 1 99\n");
  EXPECT_THROW(PredictorSnapshot::load(in), std::runtime_error);
}

TEST(SerializationTest, SaveAppendsChecksumLine) {
  const Trained& t = trained();
  std::stringstream out;
  PredictorSnapshot::from(*t.predictor).save(out);
  EXPECT_NE(out.str().find("\nchecksum "), std::string::npos);
}

TEST(SerializationTest, RejectsChecksumMismatch) {
  const Trained& t = trained();
  std::stringstream out;
  PredictorSnapshot::from(*t.predictor).save(out);
  std::string text = out.str();
  // An extra space is invisible to token-level parsing — only the
  // checksum can catch this byte-level corruption.
  text.insert(text.find('\n') + 1, " ");
  std::stringstream corrupted(text);
  try {
    PredictorSnapshot::load(corrupted);
    FAIL() << "corrupted snapshot accepted";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("checksum"), std::string::npos)
        << e.what();
  }
}

TEST(SerializationTest, AcceptsLegacySnapshotWithoutChecksum) {
  const Trained& t = trained();
  const PredictorSnapshot snapshot = PredictorSnapshot::from(*t.predictor);
  std::stringstream out;
  snapshot.save(out);
  std::string text = out.str();
  const auto mark = text.rfind("\nchecksum ");
  ASSERT_NE(mark, std::string::npos);
  std::stringstream legacy(text.substr(0, mark + 1));
  const PredictorSnapshot loaded = PredictorSnapshot::load(legacy);
  const auto& stats = t.suite.benchmark(0).base_statistics;
  EXPECT_DOUBLE_EQ(loaded.predict_raw(stats), snapshot.predict_raw(stats));
}

TEST(SerializationTest, RejectsNonFiniteParameters) {
  // A structurally valid snapshot whose first weight is NaN; strtod
  // happily parses "nan", so an explicit finiteness check must reject it.
  const std::string nan_weight(
      "hetsched-predictor v1\n"
      "features 2 0 1\n"
      "scaler 2 0x0p+0 0x0p+0 0x1p+0 0x1p+0\n"
      "members 1\n"
      "mlp 3 2 2 1 0 0\n"
      "nan 0x0p+0 0x0p+0 0x0p+0 0x0p+0 0x0p+0\n"
      "0x0p+0 0x0p+0 0x0p+0\n");
  std::stringstream weights(nan_weight);
  EXPECT_THROW(PredictorSnapshot::load(weights), std::runtime_error);

  std::stringstream scaler_mean(
      "hetsched-predictor v1\n"
      "features 2 0 1\n"
      "scaler 2 inf 0x0p+0 0x1p+0 0x1p+0\n");
  EXPECT_THROW(PredictorSnapshot::load(scaler_mean), std::runtime_error);

  std::stringstream scaler_stddev(
      "hetsched-predictor v1\n"
      "features 2 0 1\n"
      "scaler 2 0x0p+0 0x0p+0 0x0p+0 0x1p+0\n");
  EXPECT_THROW(PredictorSnapshot::load(scaler_stddev), std::runtime_error);
}

TEST(SerializationTest, LoadedSnapshotDrivesTheScheduler) {
  const Trained& t = trained();
  std::stringstream stream;
  PredictorSnapshot::from(*t.predictor).save(stream);
  const PredictorSnapshot loaded = PredictorSnapshot::load(stream);

  Rng rng(33);
  ArrivalOptions arrival_options;
  arrival_options.count = 150;
  arrival_options.mean_interarrival_cycles = 50000.0;
  const auto arrivals =
      generate_arrivals(t.suite.scheduling_ids(), arrival_options, rng);

  const EnergyModel energy{CactiModel{}};
  auto run = [&](const SizePredictor& predictor) {
    ProposedPolicy policy(predictor);
    MulticoreSimulator sim(SystemConfig::paper_quadcore(), t.suite, energy,
                           policy);
    return sim.run(arrivals);
  };
  const SimulationResult live = run(*t.predictor);
  const SimulationResult from_snapshot = run(loaded);
  EXPECT_DOUBLE_EQ(live.total_energy().value(),
                   from_snapshot.total_energy().value());
  EXPECT_EQ(live.makespan, from_snapshot.makespan);
}

}  // namespace
}  // namespace hetsched
