// Tests for the event-driven multicore simulator and the four scheduler
// policies, driven by a miniature characterised suite.
#include <gtest/gtest.h>

#include <set>

#include "core/policies.hpp"
#include "core/simulator.hpp"
#include "core/tuning_heuristic.hpp"
#include "experiment/experiment.hpp"

namespace hetsched {
namespace {

struct Fixture {
  EnergyModel energy{CactiModel{}};
  CharacterizedSuite suite;
  std::vector<JobArrival> arrivals;

  explicit Fixture(std::size_t jobs = 200,
                   double mean_gap = 60000.0) {
    SuiteOptions options;
    options.kernel_scale = 0.25;
    options.variants_per_kernel = 1;
    suite = CharacterizedSuite::build(energy, options);
    Rng rng(99);
    ArrivalOptions arrival_options;
    arrival_options.count = jobs;
    arrival_options.mean_interarrival_cycles = mean_gap;
    arrivals =
        generate_arrivals(suite.scheduling_ids(), arrival_options, rng);
  }
};

const Fixture& fixture() {
  static const Fixture f;
  return f;
}

// A fixed-answer predictor for policy tests.
class FixedPredictor final : public SizePredictor {
 public:
  explicit FixedPredictor(std::uint32_t size) : size_(size) {}
  std::uint32_t predict(std::size_t,
                        const ExecutionStatistics&) const override {
    return size_;
  }

 private:
  std::uint32_t size_;
};

TEST(SimulatorTest, BaseSystemCompletesEveryJob) {
  const Fixture& f = fixture();
  BasePolicy policy;
  MulticoreSimulator sim(SystemConfig::fixed_base(4), f.suite, f.energy,
                         policy);
  const SimulationResult result = sim.run(f.arrivals);
  EXPECT_EQ(result.completed_jobs, f.arrivals.size());
  EXPECT_EQ(result.stall_events, 0u);
  EXPECT_EQ(result.profiling_runs, 0u);
  EXPECT_EQ(result.reconfigurations, 0u) << "base never reconfigures";
  EXPECT_GE(result.makespan, f.arrivals.back().arrival);
}

TEST(SimulatorTest, EnergyBucketsArePositiveAndSumToTotal) {
  const Fixture& f = fixture();
  BasePolicy policy;
  MulticoreSimulator sim(SystemConfig::fixed_base(4), f.suite, f.energy,
                         policy);
  const SimulationResult result = sim.run(f.arrivals);
  EXPECT_GT(result.idle_energy.value(), 0.0);
  EXPECT_GT(result.dynamic_energy.value(), 0.0);
  EXPECT_GT(result.busy_static_energy.value(), 0.0);
  EXPECT_GT(result.cpu_energy.value(), 0.0);
  EXPECT_NEAR(result.total_energy().value(),
              result.idle_energy.value() + result.dynamic_energy.value() +
                  result.busy_static_energy.value() +
                  result.cpu_energy.value() +
                  result.reconfig_energy.value(),
              1e-6);
}

TEST(SimulatorTest, DeterministicAcrossRuns) {
  const Fixture& f = fixture();
  auto run_once = [&] {
    OptimalPolicy policy;
    MulticoreSimulator sim(SystemConfig::paper_quadcore(), f.suite,
                           f.energy, policy);
    return sim.run(f.arrivals);
  };
  const SimulationResult a = run_once();
  const SimulationResult b = run_once();
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_DOUBLE_EQ(a.total_energy().value(), b.total_energy().value());
  EXPECT_EQ(a.stall_events, b.stall_events);
  EXPECT_EQ(a.tuning_runs, b.tuning_runs);
}

TEST(SimulatorTest, PerCoreUtilizationIsSane) {
  const Fixture& f = fixture();
  BasePolicy policy;
  MulticoreSimulator sim(SystemConfig::fixed_base(4), f.suite, f.energy,
                         policy);
  const SimulationResult result = sim.run(f.arrivals);
  Cycles total_busy = 0;
  for (const CoreUsage& core : result.per_core) {
    EXPECT_GE(core.utilization, 0.0);
    EXPECT_LE(core.utilization, 1.0 + 1e-9);
    total_busy += core.busy_cycles;
  }
  EXPECT_EQ(total_busy, result.total_execution_cycles);
}

TEST(SimulatorTest, CannotRunTwice) {
  const Fixture& f = fixture();
  BasePolicy policy;
  MulticoreSimulator sim(SystemConfig::fixed_base(4), f.suite, f.energy,
                         policy);
  sim.run(f.arrivals);
  EXPECT_DEATH(sim.run(f.arrivals), "precondition");
}

TEST(PolicyTest, ProfilingHappensOncePerBenchmarkOnProfilingCores) {
  const Fixture& f = fixture();
  OptimalPolicy policy;
  MulticoreSimulator sim(SystemConfig::paper_quadcore(), f.suite, f.energy,
                         policy);
  const SimulationResult result = sim.run(f.arrivals);
  // Every distinct benchmark in the stream is profiled exactly once.
  std::set<std::size_t> distinct;
  for (const JobArrival& a : f.arrivals) distinct.insert(a.benchmark_id);
  EXPECT_EQ(result.profiling_runs, distinct.size());
  for (std::size_t id : distinct) {
    EXPECT_TRUE(sim.table().entry(id).profiled);
  }
}

TEST(PolicyTest, OptimalEventuallyExploresEverything) {
  // 700 arrivals of 19 benchmarks: each recurs ~36 times, comfortably
  // beyond the 18 executions the exhaustive search needs.
  const Fixture f(700);
  OptimalPolicy policy;
  MulticoreSimulator sim(SystemConfig::paper_quadcore(), f.suite, f.energy,
                         policy);
  sim.run(f.arrivals);
  std::set<std::size_t> distinct;
  for (const JobArrival& a : f.arrivals) distinct.insert(a.benchmark_id);
  for (std::size_t id : distinct) {
    EXPECT_TRUE(sim.table().entry(id).fully_explored())
        << f.suite.benchmark(id).instance.name;
  }
}

TEST(PolicyTest, EnergyCentricOnlyUsesPredictedCores) {
  const Fixture& f = fixture();
  // Force every job onto the single 2KB core: cores 1..3 must then only
  // ever run profiling executions (which live on cores 2 and 3).
  FixedPredictor predictor(2048);
  EnergyCentricPolicy policy(predictor);
  MulticoreSimulator sim(SystemConfig::paper_quadcore(), f.suite, f.energy,
                         policy);
  const SimulationResult result = sim.run(f.arrivals);
  EXPECT_EQ(result.completed_jobs, f.arrivals.size());
  EXPECT_GT(result.stall_events, 0u) << "single best core must cause stalls";
  std::set<std::size_t> distinct;
  for (const JobArrival& a : f.arrivals) distinct.insert(a.benchmark_id);
  // Core 1 (4KB) runs nothing; cores 2/3 only profiling runs.
  EXPECT_EQ(result.per_core[1].executions, 0u);
  EXPECT_EQ(result.per_core[2].executions + result.per_core[3].executions,
            result.profiling_runs);
  EXPECT_EQ(result.per_core[0].executions,
            f.arrivals.size() - result.profiling_runs);
}

TEST(PolicyTest, ProposedCompletesAndTunes) {
  const Fixture& f = fixture();
  OracleSizePredictor predictor(f.suite);
  ProposedPolicy policy(predictor);
  MulticoreSimulator sim(SystemConfig::paper_quadcore(), f.suite, f.energy,
                         policy);
  const SimulationResult result = sim.run(f.arrivals);
  EXPECT_EQ(result.completed_jobs, f.arrivals.size());
  EXPECT_GT(result.tuning_runs, 0u);
  EXPECT_GT(result.reconfigurations, 0u);
  // The heuristic never needs more than 5 executions per size, so no
  // benchmark can have executed more than 5+5+5 (+1 base) configurations.
  std::set<std::size_t> distinct;
  for (const JobArrival& a : f.arrivals) distinct.insert(a.benchmark_id);
  for (std::size_t id : distinct) {
    EXPECT_LE(sim.table().entry(id).observed_count(), 16u);
  }
}

TEST(PolicyTest, ProposedNeverLeavesPredictedJobsUnfinished) {
  // Degenerate single-size predictor exercises the stall path heavily.
  const Fixture& f = fixture();
  FixedPredictor predictor(8192);
  ProposedPolicy policy(predictor);
  MulticoreSimulator sim(SystemConfig::paper_quadcore(), f.suite, f.energy,
                         policy);
  const SimulationResult result = sim.run(f.arrivals);
  EXPECT_EQ(result.completed_jobs, f.arrivals.size());
}

TEST(PolicyTest, PolicyNamesAreStable) {
  BasePolicy base;
  OptimalPolicy optimal;
  FixedPredictor predictor(2048);
  EnergyCentricPolicy ec(predictor);
  ProposedPolicy proposed(predictor);
  EXPECT_EQ(base.name(), "base");
  EXPECT_EQ(optimal.name(), "optimal");
  EXPECT_EQ(ec.name(), "energy-centric");
  EXPECT_EQ(proposed.name(), "proposed");
}

TEST(PolicyTest, HeterogeneousSystemsUseLessEnergyThanBase) {
  const Fixture& f = fixture();
  auto total = [&](SchedulerPolicy& policy, const SystemConfig& system) {
    MulticoreSimulator sim(system, f.suite, f.energy, policy);
    return sim.run(f.arrivals).total_energy().value();
  };
  BasePolicy base;
  OptimalPolicy optimal;
  OracleSizePredictor oracle(f.suite);
  ProposedPolicy proposed(oracle);
  const double base_total = total(base, SystemConfig::fixed_base(4));
  EXPECT_LT(total(optimal, SystemConfig::paper_quadcore()), base_total);
  EXPECT_LT(total(proposed, SystemConfig::paper_quadcore()), base_total);
}

TEST(ExecutionKindTest, Names) {
  EXPECT_EQ(to_string(ExecutionKind::kNormal), "normal");
  EXPECT_EQ(to_string(ExecutionKind::kProfiling), "profiling");
  EXPECT_EQ(to_string(ExecutionKind::kTuning), "tuning");
}

}  // namespace
}  // namespace hetsched
