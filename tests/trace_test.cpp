// Tests for src/trace: instrumented execution context, counters, and the
// synthetic kernel suite (parameterised over every kernel).
#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "trace/execution_context.hpp"
#include "trace/kernel.hpp"

namespace hetsched {
namespace {

TEST(ExecutionContextTest, AllocationsAre64ByteAlignedAndDisjoint) {
  ExecutionContext ctx(1);
  auto a = ctx.alloc<std::uint32_t>(10);
  auto b = ctx.alloc<std::uint8_t>(3);
  auto c = ctx.alloc<double>(4);
  EXPECT_EQ(a.base_address() % 64, 0u);
  EXPECT_EQ(b.base_address() % 64, 0u);
  EXPECT_EQ(c.base_address() % 64, 0u);
  EXPECT_GE(b.base_address(), a.base_address() + 40);
  EXPECT_GE(c.base_address(), b.base_address() + 3);
}

TEST(ExecutionContextTest, LoadRecordsAddressSizeAndCount) {
  ExecutionContext ctx(1);
  auto a = ctx.alloc<std::uint32_t>(8);
  a.poke(3, 77);
  EXPECT_EQ(a.load(3), 77u);
  ASSERT_EQ(ctx.trace().size(), 1u);
  const MemRef& ref = ctx.trace().front();
  EXPECT_EQ(ref.address, a.base_address() + 12);
  EXPECT_EQ(ref.size, 4);
  EXPECT_FALSE(ref.is_write);
  EXPECT_EQ(ctx.counters().loads, 1u);
  EXPECT_EQ(ctx.counters().stores, 0u);
}

TEST(ExecutionContextTest, StoreRecordsWriteAndUpdatesValue) {
  ExecutionContext ctx(1);
  auto a = ctx.alloc<std::uint16_t>(4);
  a.store(2, 99);
  EXPECT_EQ(a.peek(2), 99);
  ASSERT_EQ(ctx.trace().size(), 1u);
  EXPECT_TRUE(ctx.trace().front().is_write);
  EXPECT_EQ(ctx.trace().front().size, 2);
  EXPECT_EQ(ctx.counters().stores, 1u);
}

TEST(ExecutionContextTest, PokeAndPeekAreUntraced) {
  ExecutionContext ctx(1);
  auto a = ctx.alloc<int>(4);
  a.poke(0, 5);
  EXPECT_EQ(a.peek(0), 5);
  EXPECT_TRUE(ctx.trace().empty());
  EXPECT_EQ(ctx.counters().memory_refs(), 0u);
}

TEST(ExecutionContextTest, BranchCountingTracksTaken) {
  ExecutionContext ctx(1);
  EXPECT_TRUE(ctx.branch(true));
  EXPECT_FALSE(ctx.branch(false));
  EXPECT_TRUE(ctx.branch(true));
  EXPECT_EQ(ctx.counters().branches, 3u);
  EXPECT_EQ(ctx.counters().taken_branches, 2u);
}

TEST(ExecutionContextTest, OpCountsAccumulate) {
  ExecutionContext ctx(1);
  ctx.int_op();
  ctx.int_op(4);
  ctx.fp_op(2);
  EXPECT_EQ(ctx.counters().int_ops, 5u);
  EXPECT_EQ(ctx.counters().fp_ops, 2u);
  EXPECT_EQ(ctx.counters().total_instructions(), 7u);
}

TEST(ExecutionContextTest, TotalInstructionsSumsAllClasses) {
  ExecutionContext ctx(1);
  auto a = ctx.alloc<int>(2);
  a.store(0, 1);
  (void)a.load(0);
  ctx.branch(true);
  ctx.int_op(3);
  ctx.fp_op(2);
  EXPECT_EQ(ctx.counters().total_instructions(), 1u + 1u + 1u + 3u + 2u);
}

TEST(KernelSuiteTest, StandardSuiteHasExpectedShape) {
  const auto kernels = make_standard_kernels();
  EXPECT_EQ(kernels.size(), 19u);
  std::set<std::string> names;
  std::set<Domain> domains;
  for (const auto& k : kernels) {
    names.insert(k->name());
    domains.insert(k->domain());
  }
  EXPECT_EQ(names.size(), kernels.size()) << "kernel names must be unique";
  EXPECT_EQ(domains.size(), 5u) << "all five EEMBC-style domains present";
}

TEST(KernelSuiteTest, DomainNamesRoundTrip) {
  EXPECT_EQ(to_string(Domain::kAutomotive), "automotive");
  EXPECT_EQ(to_string(Domain::kTelecom), "telecom");
  EXPECT_EQ(to_string(Domain::kOffice), "office");
  EXPECT_EQ(to_string(Domain::kConsumer), "consumer");
  EXPECT_EQ(to_string(Domain::kNetworking), "networking");
}

// ---- Parameterised over every kernel in the suite ----

class KernelParamTest : public ::testing::TestWithParam<std::size_t> {
 protected:
  static const std::vector<std::unique_ptr<Kernel>>& kernels() {
    static const auto k = make_standard_kernels(0.5);
    return k;
  }
  const Kernel& kernel() const { return *kernels()[GetParam()]; }
};

TEST_P(KernelParamTest, ProducesNonTrivialTrace) {
  const KernelExecution exec = execute(kernel(), 42);
  EXPECT_GT(exec.trace.size(), 100u) << kernel().name();
  EXPECT_GT(exec.footprint_bytes, 0u);
  EXPECT_GT(exec.counters.total_instructions(), exec.trace.size());
}

TEST_P(KernelParamTest, TraceMatchesCounters) {
  const KernelExecution exec = execute(kernel(), 42);
  std::uint64_t loads = 0, stores = 0;
  for (const MemRef& ref : exec.trace) {
    (ref.is_write ? stores : loads)++;
  }
  EXPECT_EQ(loads, exec.counters.loads);
  EXPECT_EQ(stores, exec.counters.stores);
}

TEST_P(KernelParamTest, AddressesStayInsideFootprint) {
  const KernelExecution exec = execute(kernel(), 42);
  for (const MemRef& ref : exec.trace) {
    ASSERT_GE(ref.address, 0x1000u);
    ASSERT_LE(ref.address + ref.size, 0x1000u + exec.footprint_bytes)
        << kernel().name();
  }
}

TEST_P(KernelParamTest, DeterministicForSameSeed) {
  const KernelExecution a = execute(kernel(), 7);
  const KernelExecution b = execute(kernel(), 7);
  EXPECT_EQ(a.trace, b.trace);
  EXPECT_EQ(a.counters.total_instructions(),
            b.counters.total_instructions());
}

TEST(KernelSuiteTest, SuiteContainsDataDependentKernels) {
  // Regular kernels (FIR, matmul, FFT, ...) legitimately have
  // data-independent address streams; but a healthy suite must also
  // contain kernels whose traces or branch behaviour react to their
  // input data (table walks, histograms, dithering, parsing, ...).
  const auto kernels = make_standard_kernels(0.5);
  std::size_t data_dependent = 0;
  for (const auto& kernel : kernels) {
    const KernelExecution a = execute(*kernel, 1);
    const KernelExecution b = execute(*kernel, 2);
    if (a.trace != b.trace ||
        a.counters.taken_branches != b.counters.taken_branches) {
      ++data_dependent;
    }
  }
  EXPECT_GE(data_dependent, 8u);
}

TEST_P(KernelParamTest, TakenBranchesNeverExceedBranches) {
  const KernelExecution exec = execute(kernel(), 42);
  EXPECT_LE(exec.counters.taken_branches, exec.counters.branches);
}

TEST_P(KernelParamTest, ScaleChangesWork) {
  const auto small_kernels = make_standard_kernels(0.25);
  const auto big_kernels = make_standard_kernels(1.0);
  const KernelExecution small =
      execute(*small_kernels[GetParam()], 42);
  const KernelExecution big = execute(*big_kernels[GetParam()], 42);
  EXPECT_LT(small.trace.size(), big.trace.size()) << kernel().name();
}

INSTANTIATE_TEST_SUITE_P(
    AllKernels, KernelParamTest,
    ::testing::Range<std::size_t>(0, 19),
    [](const ::testing::TestParamInfo<std::size_t>& info) {
      static const auto kernels = make_standard_kernels(0.5);
      return kernels[info.param]->name();
    });

}  // namespace
}  // namespace hetsched
