// Tests for the two-level (L1+L2) energy model extension.
#include <gtest/gtest.h>

#include "energy/two_level_model.hpp"
#include "trace/kernel.hpp"

namespace hetsched {
namespace {

TEST(TwoLevelModelTest, StallCyclesSplitByLevel) {
  const TwoLevelEnergyModel model{CactiModel{}};
  const CacheConfig l1{4096, 2, 32};
  const auto& p = model.l1_model().params();
  const Cycles l1_beats = l1.line_bytes / p.beat_bytes;
  const Cycles l2_beats =
      model.two_level().l2_config.line_bytes / p.beat_bytes;
  const Cycles expected_l2 =
      model.two_level().l2_hit_latency + l1_beats;
  const Cycles expected_offchip =
      p.miss_latency + l2_beats * p.bandwidth_cycles_per_beat;
  EXPECT_EQ(model.stall_cycles(l1, 10, 0), 10 * expected_l2);
  EXPECT_EQ(model.stall_cycles(l1, 0, 10), 10 * expected_offchip);
  EXPECT_EQ(model.stall_cycles(l1, 3, 2),
            3 * expected_l2 + 2 * expected_offchip);
}

TEST(TwoLevelModelTest, L2ServedMissIsMuchCheaperThanOffchip) {
  const TwoLevelEnergyModel model{CactiModel{}};
  const CacheConfig l1{8192, 4, 64};
  EXPECT_LT(model.stall_cycles(l1, 1, 0) * 5, model.stall_cycles(l1, 0, 1));
  EXPECT_LT(model.l2_access_energy().value() * 3,
            model.offchip_miss_energy().value());
}

TEST(TwoLevelModelTest, StaticIncludesL2Leakage) {
  const TwoLevelEnergyModel model{CactiModel{}};
  const CacheConfig l1{2048, 1, 16};
  EXPECT_GT(model.static_per_cycle(l1).value(),
            model.l1_model().static_per_cycle(l1).value());
}

TEST(TwoLevelModelTest, EvaluateIsCheaperThanFigure4ForReusyWorkload) {
  // A benchmark whose working set exceeds L1 but fits L2: most L1 misses
  // hit in L2, so the two-level model must price it below the Figure-4
  // every-miss-goes-off-chip model.
  const auto kernels = make_standard_kernels(0.5);
  const Kernel* big = nullptr;
  for (const auto& k : kernels) {
    if (k->name() == "matrix01") big = k.get();
  }
  ASSERT_NE(big, nullptr);
  const KernelExecution exec = execute(*big, 7);
  const CacheConfig l1{2048, 1, 16};

  const HierarchyStats stats = simulate_hierarchy(exec.trace, l1);
  ASSERT_GT(stats.l1.misses, 0u);
  ASSERT_LT(stats.global_miss_rate(), stats.l1.miss_rate());

  const TwoLevelEnergyModel two_level{CactiModel{}};
  const EnergyModel fig4{CactiModel{}};
  const EnergyBreakdown with_l2 =
      two_level.evaluate(exec.counters, stats, l1);
  const EnergyBreakdown without =
      fig4.evaluate(exec.counters,
                    CacheSimResult{l1, stats.l1});
  EXPECT_LT(with_l2.miss_cycles, without.miss_cycles);
  EXPECT_LT(with_l2.dynamic_energy.value(), without.dynamic_energy.value());
}

TEST(TwoLevelModelTest, EvaluateDecomposes) {
  const TwoLevelEnergyModel model{CactiModel{}};
  RawCounters counters;
  counters.loads = 1000;
  counters.int_ops = 1000;
  HierarchyStats stats;
  stats.l1.accesses = 1000;
  stats.l1.hits = 900;
  stats.l1.misses = 100;
  stats.l2.accesses = 100;
  stats.l2.hits = 80;
  stats.l2.misses = 20;
  const CacheConfig l1{4096, 1, 16};
  const EnergyBreakdown out = model.evaluate(counters, stats, l1);
  EXPECT_EQ(out.miss_cycles, model.stall_cycles(l1, 80, 20));
  EXPECT_EQ(out.total_cycles, 2000 + out.miss_cycles);
  EXPECT_GT(out.dynamic_energy.value(), 0.0);
  EXPECT_NEAR(out.static_energy.value(),
              model.static_per_cycle(l1).value() *
                  static_cast<double>(out.total_cycles),
              1e-9);
}

TEST(TwoLevelModelTest, ClampsInconsistentL2Misses) {
  // Degenerate stats with more L2 misses than L1 misses (possible via
  // writeback traffic) must not underflow.
  const TwoLevelEnergyModel model{CactiModel{}};
  RawCounters counters;
  counters.loads = 10;
  HierarchyStats stats;
  stats.l1.accesses = 10;
  stats.l1.hits = 9;
  stats.l1.misses = 1;
  stats.l2.misses = 5;
  const EnergyBreakdown out =
      model.evaluate(counters, stats, CacheConfig{2048, 1, 16});
  EXPECT_GT(out.total_cycles, 0u);
}

}  // namespace
}  // namespace hetsched
