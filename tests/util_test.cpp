// Tests for src/util: RNG determinism and distributions, running
// statistics, percentiles, table/CSV formatting, unit types.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <set>
#include <sstream>
#include <string>

#include "util/csv.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table_printer.hpp"
#include "util/units.hpp"

namespace hetsched {
namespace {

TEST(SplitMix64Test, KnownSequenceIsDeterministic) {
  SplitMix64 a(1234), b(1234);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
}

TEST(RngTest, SameSeedSameStream) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.next(), b.next());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformRangeRespectsBounds) {
  Rng rng(8);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(5.0, 6.5);
    ASSERT_GE(u, 5.0);
    ASSERT_LT(u, 6.5);
  }
}

TEST(RngTest, BelowCoversFullRangeWithoutBias) {
  Rng rng(9);
  std::vector<int> counts(10, 0);
  const int draws = 100000;
  for (int i = 0; i < draws; ++i) {
    ++counts[rng.below(10)];
  }
  for (int c : counts) {
    // Each bucket expects 10000; allow 5% deviation.
    EXPECT_NEAR(c, draws / 10, draws / 200);
  }
}

TEST(RngTest, RangeInclusive) {
  Rng rng(10);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.range(-3, 3);
    ASSERT_GE(v, -3);
    ASSERT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, NormalMomentsAreSane) {
  Rng rng(11);
  RunningStats s;
  for (int i = 0; i < 50000; ++i) {
    s.add(rng.normal());
  }
  EXPECT_NEAR(s.mean(), 0.0, 0.02);
  EXPECT_NEAR(s.stddev(), 1.0, 0.02);
}

TEST(RngTest, NormalWithParams) {
  Rng rng(12);
  RunningStats s;
  for (int i = 0; i < 50000; ++i) {
    s.add(rng.normal(10.0, 2.0));
  }
  EXPECT_NEAR(s.mean(), 10.0, 0.05);
  EXPECT_NEAR(s.stddev(), 2.0, 0.05);
}

TEST(RngTest, ExponentialMeanMatchesRate) {
  Rng rng(13);
  RunningStats s;
  for (int i = 0; i < 50000; ++i) {
    s.add(rng.exponential(0.5));  // mean 2
  }
  EXPECT_NEAR(s.mean(), 2.0, 0.05);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(14);
  int heads = 0;
  for (int i = 0; i < 100000; ++i) {
    if (rng.bernoulli(0.3)) ++heads;
  }
  EXPECT_NEAR(heads / 100000.0, 0.3, 0.01);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(15);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(RngTest, ShuffleEmptyAndSingleton) {
  Rng rng(16);
  std::vector<int> empty;
  rng.shuffle(empty);
  EXPECT_TRUE(empty.empty());
  std::vector<int> one{7};
  rng.shuffle(one);
  EXPECT_EQ(one, std::vector<int>{7});
}

TEST(RngTest, SampleWithReplacementBounds) {
  Rng rng(17);
  const auto sample = rng.sample_with_replacement(5, 100);
  EXPECT_EQ(sample.size(), 100u);
  for (auto idx : sample) {
    EXPECT_LT(idx, 5u);
  }
}

TEST(RngTest, SplitProducesIndependentStream) {
  Rng a(18);
  Rng child = a.split();
  // The child stream should differ from the parent continuation.
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == child.next()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RunningStatsTest, BasicMoments) {
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStatsTest, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStatsTest, MergeMatchesSequential) {
  Rng rng(19);
  RunningStats all, left, right;
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.normal(3.0, 1.5);
    all.add(v);
    (i % 2 == 0 ? left : right).add(v);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(RunningStatsTest, MergeWithEmpty) {
  RunningStats a, empty;
  a.add(1.0);
  a.add(3.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.mean(), 2.0);
}

TEST(StatsTest, PercentileInterpolates) {
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100.0), 4.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50.0), 2.5);
}

TEST(StatsTest, PercentileSingleValue) {
  const std::vector<double> v{42.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 42.0);
  EXPECT_DOUBLE_EQ(percentile(v, 99.0), 42.0);
}

TEST(StatsTest, PearsonPerfectCorrelation) {
  const std::vector<double> x{1, 2, 3, 4, 5};
  const std::vector<double> y{2, 4, 6, 8, 10};
  EXPECT_NEAR(pearson(x, y), 1.0, 1e-12);
  std::vector<double> neg{10, 8, 6, 4, 2};
  EXPECT_NEAR(pearson(x, neg), -1.0, 1e-12);
}

TEST(StatsTest, PearsonZeroVarianceIsZero) {
  const std::vector<double> x{1, 1, 1, 1};
  const std::vector<double> y{2, 4, 6, 8};
  EXPECT_DOUBLE_EQ(pearson(x, y), 0.0);
}

TEST(StatsTest, GeomeanOfPowers) {
  const std::vector<double> v{1.0, 4.0, 16.0};
  EXPECT_NEAR(geomean(v), 4.0, 1e-12);
}

TEST(StatsTest, HistogramCountsSum) {
  Rng rng(20);
  std::vector<double> v;
  for (int i = 0; i < 1000; ++i) v.push_back(rng.uniform());
  const Histogram h = Histogram::build(v, 10);
  std::size_t total = 0;
  for (auto c : h.bins) total += c;
  EXPECT_EQ(total, v.size());
}

TEST(TablePrinterTest, AlignmentAndContent) {
  TablePrinter table({"name", "value"});
  table.add_row({"alpha", "1.00"});
  table.add_row({"b", "20.50"});
  const std::string out = table.to_string();
  EXPECT_NE(out.find("| alpha | "), std::string::npos);
  EXPECT_NE(out.find("20.50 |"), std::string::npos);
  EXPECT_NE(out.find("+-"), std::string::npos);
}

TEST(TablePrinterTest, NumberFormatting) {
  EXPECT_EQ(TablePrinter::num(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::pct(-0.284), "-28.4%");
  EXPECT_EQ(TablePrinter::pct(0.02), "+2.0%");
}

TEST(CsvWriterTest, EscapesSpecialCharacters) {
  EXPECT_EQ(CsvWriter::escape("plain"), "plain");
  EXPECT_EQ(CsvWriter::escape("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvWriter::escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  // Embedded line breaks — including bare carriage returns — must be
  // quoted or the row splits when the file is read back.
  EXPECT_EQ(CsvWriter::escape("two\nlines"), "\"two\nlines\"");
  EXPECT_EQ(CsvWriter::escape("cr\rhere"), "\"cr\rhere\"");
  EXPECT_EQ(CsvWriter::escape("crlf\r\n"), "\"crlf\r\n\"");
}

TEST(CsvWriterTest, NumberRoundTripsDoubles) {
  for (double v : {1.0 / 3.0, 0.1, 1e-300, 12345.6789, -2.5e17}) {
    const std::string text = CsvWriter::number(v);
    EXPECT_EQ(std::stod(text), v) << text;
  }
  EXPECT_EQ(CsvWriter::number(2.0), "2");
}

TEST(StatsTest, RunningStatsRejectsNonFiniteValues) {
  RunningStats s;
  s.add(1.0);
  EXPECT_DEATH(s.add(std::nan("")), "precondition");
  EXPECT_DEATH(s.add(std::numeric_limits<double>::infinity()),
               "precondition");
  EXPECT_DEATH(s.add(-std::numeric_limits<double>::infinity()),
               "precondition");
}

TEST(StatsTest, PercentileRejectsNonFiniteValues) {
  const std::vector<double> with_nan{1.0, std::nan(""), 2.0};
  EXPECT_DEATH(percentile(with_nan, 50.0), "precondition");
  const std::vector<double> with_inf{
      1.0, std::numeric_limits<double>::infinity()};
  EXPECT_DEATH(percentile(with_inf, 99.0), "precondition");
}

TEST(StatsTest, HistogramRejectsNonFiniteValues) {
  const std::vector<double> with_nan{1.0, std::nan(""), 2.0};
  EXPECT_DEATH(Histogram::build(with_nan, 4), "precondition");
  const std::vector<double> with_inf{
      1.0, std::numeric_limits<double>::infinity()};
  EXPECT_DEATH(Histogram::build(with_inf, 4), "precondition");
}

TEST(StatsTest, HistogramMaxValueLandsInLastBin) {
  const std::vector<double> v{0.0, 0.25, 0.5, 0.75, 1.0};
  const Histogram h = Histogram::build(v, 4);
  EXPECT_EQ(h.bins.back(), 2u);  // 0.75 and the hi value 1.0
  std::size_t total = 0;
  for (auto c : h.bins) total += c;
  EXPECT_EQ(total, v.size());
}

TEST(StatsTest, HistogramAllEqualValuesUseFirstBin) {
  const std::vector<double> v{3.0, 3.0, 3.0};
  const Histogram h = Histogram::build(v, 5);
  EXPECT_EQ(h.bins[0], v.size());
}

TEST(UnitsTest, NanoJoulesArithmetic) {
  NanoJoules a(100.0), b(50.0);
  EXPECT_DOUBLE_EQ((a + b).value(), 150.0);
  EXPECT_DOUBLE_EQ((a - b).value(), 50.0);
  EXPECT_DOUBLE_EQ((a * 2.0).value(), 200.0);
  EXPECT_DOUBLE_EQ((2.0 * a).value(), 200.0);
  EXPECT_DOUBLE_EQ(a / b, 2.0);
  EXPECT_DOUBLE_EQ(a.joules(), 1e-7);
  EXPECT_TRUE(b < a);
}

}  // namespace
}  // namespace hetsched
