// Windowed telemetry pipeline: tumbling-window attribution semantics,
// retention caps, anomaly/SLO rules on synthetic drift, the bench-diff
// regression gate, run-report assembly, and the end-to-end determinism
// contract — window JSONL is byte-identical across thread counts and
// between streaming and batch runs (ctest label: integration).
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/policies.hpp"
#include "obs/bench_diff.hpp"
#include "obs/latency.hpp"
#include "obs/event_trace.hpp"
#include "obs/run_report.hpp"
#include "obs/windowed.hpp"
#include "scenario/scenario_runner.hpp"
#include "util/thread_pool.hpp"

namespace hetsched {
namespace {

ScheduledSlice slice(std::uint64_t job, std::size_t core, SimTime start,
                     SimTime end, bool completed = true) {
  ScheduledSlice s;
  s.job_id = job;
  s.benchmark_id = 0;
  s.core = core;
  s.start = start;
  s.end = end;
  s.completed = completed;
  return s;
}

TEST(WindowedCollector, TumblingAttributionOnClosingTimestamp) {
  WindowedCollector collector(2, WindowedOptions{100, 0});
  collector.on_slice(slice(1, 0, 10, 50));     // closes in window 0
  collector.on_slice(slice(2, 1, 60, 100));    // t == end: window 1
  IdleEvent idle;
  idle.core = 0;
  idle.from = 50;
  idle.to = 250;  // interval spans windows; attributed whole to window 2
  collector.on_idle(idle);
  collector.finalize();

  const auto& windows = collector.windows();
  ASSERT_EQ(windows.size(), 3u);
  EXPECT_EQ(windows[0].start, 0u);
  EXPECT_EQ(windows[0].end, 100u);
  EXPECT_EQ(windows[0].jobs_completed, 1u);
  EXPECT_EQ(windows[0].busy_cycles[0], 40u);
  EXPECT_EQ(windows[1].index, 1u);
  EXPECT_EQ(windows[1].jobs_completed, 1u);
  EXPECT_EQ(windows[1].busy_cycles[1], 40u);
  EXPECT_EQ(windows[2].idle_cycles[0], 200u);
  EXPECT_EQ(windows[2].jobs_completed, 0u);
  EXPECT_EQ(collector.windows_closed(), 3u);
  EXPECT_EQ(collector.dropped_windows(), 0u);
}

TEST(WindowedCollector, EmptyInterveningWindowsAreEmitted) {
  WindowedCollector collector(1, WindowedOptions{100, 0});
  collector.on_slice(slice(1, 0, 0, 50));
  collector.on_slice(slice(2, 0, 500, 550));  // jumps to window 5
  collector.finalize();
  ASSERT_EQ(collector.windows().size(), 6u);
  for (std::uint64_t i = 1; i <= 4; ++i) {
    EXPECT_EQ(collector.windows()[i].index, i);
    EXPECT_EQ(collector.windows()[i].slices, 0u);
    EXPECT_EQ(collector.windows()[i].total_busy_cycles(), 0u);
  }
}

TEST(WindowedCollector, QueuePeakStallsAndMigrations) {
  WindowedCollector collector(3, WindowedOptions{1000, 0});
  collector.on_queue_depth(QueueSample{10, 2});
  collector.on_queue_depth(QueueSample{20, 7});
  collector.on_queue_depth(QueueSample{30, 4});
  collector.on_stall(StallEvent{40, 9, 0});

  // Job 5 is preempted on core 0, then re-dispatched on core 2.
  collector.on_slice(slice(5, 0, 50, 80, /*completed=*/false));
  DispatchEvent migrate;
  migrate.time = 90;
  migrate.core = 2;
  migrate.job_id = 5;
  collector.on_dispatch(migrate);
  // Job 6 is preempted and resumes on the same core: no migration.
  collector.on_slice(slice(6, 1, 100, 120, /*completed=*/false));
  DispatchEvent same_core;
  same_core.time = 130;
  same_core.core = 1;
  same_core.job_id = 6;
  collector.on_dispatch(same_core);
  collector.finalize();

  ASSERT_EQ(collector.windows().size(), 1u);
  const WindowRecord& w = collector.windows()[0];
  EXPECT_EQ(w.queue_peak, 7u);
  EXPECT_EQ(w.stalls, 1u);
  EXPECT_EQ(w.dispatches, 2u);
  EXPECT_EQ(w.migrations, 1u);
  EXPECT_EQ(w.fault_migrations, 0u);  // no faults: policy migrations only
  EXPECT_EQ(w.jobs_completed, 0u);
}

TEST(WindowedCollector, RetentionCapDropsOldestButSinkKeepsAll) {
  std::ostringstream sink;
  WindowedCollector collector(1, WindowedOptions{100, 2});
  collector.set_sink(&sink);
  for (std::uint64_t i = 0; i < 5; ++i) {
    collector.on_slice(slice(i + 1, 0, i * 100, i * 100 + 50));
  }
  collector.finalize();

  EXPECT_EQ(collector.windows_closed(), 5u);
  EXPECT_EQ(collector.dropped_windows(), 3u);
  ASSERT_EQ(collector.windows().size(), 2u);
  EXPECT_EQ(collector.windows()[0].index, 3u);
  EXPECT_EQ(collector.windows()[1].index, 4u);
  // The sink saw every window as it closed, including the dropped ones.
  std::size_t lines = 0;
  std::string line;
  std::istringstream in(sink.str());
  while (std::getline(in, line)) ++lines;
  EXPECT_EQ(lines, 5u);
  EXPECT_NE(sink.str().find("\"window\":0"), std::string::npos);
}

TEST(WindowedCollector, JsonlLineShapeIsStable) {
  WindowedCollector collector(2, WindowedOptions{100, 0});
  collector.on_slice(slice(1, 0, 0, 60));
  collector.finalize();
  const std::string line = window_to_json(collector.windows()[0]);
  EXPECT_EQ(line,
            "{\"schema\":5,"
            "\"window\":0,\"start\":0,\"end\":100,\"jobs_completed\":1,"
            "\"slices\":1,\"dispatches\":0,\"preemptions\":0,\"stalls\":0,"
            "\"migrations\":0,\"fault_migrations\":0,\"queue_peak\":0,"
            "\"prediction_hits\":0,\"prediction_misses\":0,"
            "\"reconfig_attempts\":0,\"faults\":0,\"dag_releases\":0,"
            "\"dag_ready_peak\":0,\"dag_release_latency\":0,"
            "\"dag_cp_slack\":0,\"lat_jobs\":0,\"lat_p50\":0,"
            "\"lat_p95\":0,\"lat_p99\":0,\"lat_max\":0,\"energy_mj\":0,"
            "\"busy_cycles\":[60,0],\"idle_cycles\":[0,0]}");
}

// --- Anomaly rules -------------------------------------------------------

WindowRecord make_window(std::uint64_t index, std::size_t cores) {
  WindowRecord w;
  w.index = index;
  w.start = index * 1000;
  w.end = (index + 1) * 1000;
  w.busy_cycles.assign(cores, 100);
  w.idle_cycles.assign(cores, 100);
  w.dispatches = 4;
  w.jobs_completed = 4;
  w.energy_mj = 4.0;
  return w;
}

TEST(Anomalies, CoreStarvationFiresOncePerStreak) {
  std::vector<WindowRecord> windows;
  for (std::uint64_t i = 0; i < 6; ++i) {
    WindowRecord w = make_window(i, 2);
    if (i >= 1 && i <= 4) w.busy_cycles[1] = 0;  // 4-window streak
    windows.push_back(w);
  }
  AnomalyConfig config;
  config.starvation_windows = 3;
  config.idle_spike_factor = 0.0;   // isolate the rule under test
  config.energy_drift_factor = 0.0;
  const std::vector<Anomaly> anomalies = detect_anomalies(windows, config);
  ASSERT_EQ(anomalies.size(), 1u);
  EXPECT_EQ(anomalies[0].rule, Anomaly::Rule::kCoreStarvation);
  EXPECT_EQ(anomalies[0].core, 1u);
  EXPECT_EQ(anomalies[0].window, 3u);  // third consecutive starved window
}

TEST(Anomalies, StarvationNeedsSystemWideDispatches) {
  std::vector<WindowRecord> windows;
  for (std::uint64_t i = 0; i < 5; ++i) {
    WindowRecord w = make_window(i, 2);
    w.busy_cycles[1] = 0;
    w.dispatches = 0;  // whole machine quiet: not starvation
    windows.push_back(w);
  }
  const std::vector<Anomaly> anomalies =
      detect_anomalies(windows, AnomalyConfig{});
  for (const Anomaly& a : anomalies) {
    EXPECT_NE(a.rule, Anomaly::Rule::kCoreStarvation);
  }
}

TEST(Anomalies, IdleSpikeAgainstTrailingMean) {
  std::vector<WindowRecord> windows;
  for (std::uint64_t i = 0; i < 6; ++i) windows.push_back(make_window(i, 2));
  windows[5].idle_cycles.assign(2, 1000);  // 2000 vs trailing mean 200
  AnomalyConfig config;
  config.starvation_windows = 0;
  config.energy_drift_factor = 0.0;
  const std::vector<Anomaly> anomalies = detect_anomalies(windows, config);
  ASSERT_EQ(anomalies.size(), 1u);
  EXPECT_EQ(anomalies[0].rule, Anomaly::Rule::kIdleSpike);
  EXPECT_EQ(anomalies[0].window, 5u);
  EXPECT_DOUBLE_EQ(anomalies[0].value, 2000.0);
}

TEST(Anomalies, EnergyPerJobDriftSkipsIdleWindows) {
  std::vector<WindowRecord> windows;
  for (std::uint64_t i = 0; i < 8; ++i) {
    WindowRecord w = make_window(i, 2);
    if (i == 4) {  // an idle window must not dilute the trailing mean
      w.jobs_completed = 0;
      w.energy_mj = 0.0;
    }
    if (i == 7) w.energy_mj = 8.0;  // 2 mJ/job vs trailing 1 mJ/job
    windows.push_back(w);
  }
  AnomalyConfig config;
  config.starvation_windows = 0;
  config.idle_spike_factor = 0.0;
  config.energy_drift_factor = 1.5;
  const std::vector<Anomaly> anomalies = detect_anomalies(windows, config);
  ASSERT_EQ(anomalies.size(), 1u);
  EXPECT_EQ(anomalies[0].rule, Anomaly::Rule::kEnergyDrift);
  EXPECT_EQ(anomalies[0].window, 7u);
  EXPECT_DOUBLE_EQ(anomalies[0].value, 2.0);
}

TEST(Anomalies, EnergyDriftLookbackIgnoresStaleHistoryAcrossIdleGaps) {
  // Sparse arrivals: four productive windows, a long all-idle gap, then a
  // hot window. Compacting to productive windows used to judge the hot
  // window against history from arbitrarily far in the past.
  auto sparse = [](std::uint64_t hot_index) {
    std::vector<WindowRecord> windows;
    for (std::uint64_t i = 0; i < 4; ++i) {
      windows.push_back(make_window(i, 2));
    }
    for (std::uint64_t i = 4; i < hot_index; ++i) {
      WindowRecord w = make_window(i, 2);
      w.jobs_completed = 0;  // idle gap
      w.energy_mj = 0.0;
      w.dispatches = 0;
      windows.push_back(w);
    }
    WindowRecord hot = make_window(hot_index, 2);
    hot.energy_mj = 8.0;  // 2 mJ/job vs the old windows' 1 mJ/job
    windows.push_back(hot);
    return windows;
  };
  AnomalyConfig config;
  config.starvation_windows = 0;
  config.idle_spike_factor = 0.0;
  config.energy_drift_factor = 1.5;
  config.trailing_windows = 4;
  config.drift_lookback_windows = 16;

  // History within the lookback bound: the rule fires on the hot window.
  const std::vector<Anomaly> near = detect_anomalies(sparse(10), config);
  ASSERT_EQ(near.size(), 1u);
  EXPECT_EQ(near[0].rule, Anomaly::Rule::kEnergyDrift);
  EXPECT_EQ(near[0].window, 10u);
  // The same shape across a gap beyond the bound: stale evidence, silent.
  EXPECT_TRUE(detect_anomalies(sparse(100), config).empty());
  // 0 restores the unbounded pre-fix behaviour.
  config.drift_lookback_windows = 0;
  EXPECT_EQ(detect_anomalies(sparse(100), config).size(), 1u);
}

TEST(Anomalies, ReportCapAndOrdering) {
  // Starvation streaks of length 2 separated by healthy windows: every
  // streak fires once per core, 16 anomalies total against a cap of 5.
  std::vector<WindowRecord> windows;
  for (std::uint64_t i = 0; i < 12; ++i) {
    WindowRecord w = make_window(i, 4);
    if (i % 3 != 2) {
      for (auto& busy : w.busy_cycles) busy = 0;
    }
    windows.push_back(w);
  }
  AnomalyConfig config;
  config.starvation_windows = 2;
  config.idle_spike_factor = 0.0;
  config.energy_drift_factor = 0.0;
  config.max_anomalies = 5;
  const std::vector<Anomaly> anomalies = detect_anomalies(windows, config);
  EXPECT_EQ(anomalies.size(), 5u);
  for (std::size_t i = 1; i < anomalies.size(); ++i) {
    EXPECT_LE(anomalies[i - 1].window, anomalies[i].window);
  }
  EXPECT_EQ(anomalies.front().window, 1u);  // earliest firings survive
}

// --- bench-diff ----------------------------------------------------------

TEST(BenchDiff, FlattensNestedJsonWithPaths) {
  const auto leaves = flatten_json_numbers(
      R"({"a": 1, "runs": [{"wall_ms": 2.5}, {"wall_ms": 3}], "s": "x"})");
  ASSERT_EQ(leaves.size(), 3u);
  EXPECT_EQ(leaves[0].first, "a");
  EXPECT_EQ(leaves[1].first, "runs[0].wall_ms");
  EXPECT_DOUBLE_EQ(leaves[1].second, 2.5);
  EXPECT_EQ(leaves[2].first, "runs[1].wall_ms");
}

TEST(BenchDiff, MalformedJsonThrows) {
  EXPECT_THROW(flatten_json_numbers("{\"a\": }"), std::runtime_error);
  EXPECT_THROW(flatten_json_numbers("{\"a\": 1"), std::runtime_error);
  EXPECT_THROW(flatten_json_numbers("[1, 2] trailing"), std::runtime_error);
}

TEST(BenchDiff, DirectionClassification) {
  EXPECT_EQ(classify_metric("disabled_ms"), MetricDirection::kLowerIsBetter);
  EXPECT_EQ(classify_metric("runs[3].wall_ms"),
            MetricDirection::kLowerIsBetter);
  EXPECT_EQ(classify_metric("full_overhead"),
            MetricDirection::kLowerIsBetter);
  EXPECT_EQ(classify_metric("rss_growth_10k_to_1m"),
            MetricDirection::kLowerIsBetter);
  EXPECT_EQ(classify_metric("runs[0].jobs_per_sec"),
            MetricDirection::kHigherIsBetter);
  EXPECT_EQ(classify_metric("pooled_speedup"),
            MetricDirection::kHigherIsBetter);
  EXPECT_EQ(classify_metric("test_accuracy"),
            MetricDirection::kHigherIsBetter);
  EXPECT_EQ(classify_metric("cores"), MetricDirection::kIgnored);
  EXPECT_EQ(classify_metric("runs[0].stream_digest"),
            MetricDirection::kIgnored);
}

TEST(BenchDiff, RegressionDirectionsAndTolerance) {
  const std::string baseline =
      R"({"wall_ms": 100, "jobs_per_sec": 1000, "seed": 42})";
  // Within tolerance both ways: pass.
  EXPECT_FALSE(bench_diff(baseline,
                          R"({"wall_ms": 140, "jobs_per_sec": 700,
                              "seed": 43})",
                          0.5)
                   .regressed());
  // Slower beyond tolerance: fail.
  EXPECT_TRUE(bench_diff(baseline, R"({"wall_ms": 151, "jobs_per_sec": 1000})",
                         0.5)
                  .regressed());
  // Throughput collapse: fail.
  EXPECT_TRUE(bench_diff(baseline, R"({"wall_ms": 100, "jobs_per_sec": 600})",
                         0.5)
                  .regressed());
  // Ignored keys (seed) never regress no matter how they change.
  EXPECT_FALSE(bench_diff(R"({"seed": 1})", R"({"seed": 999})", 0.0)
                   .regressed());
}

TEST(BenchDiff, MissingBaselineMetricIsARegression) {
  const BenchDiffResult diff =
      bench_diff(R"({"wall_ms": 100})", R"({"other_ms": 100})", 10.0);
  EXPECT_TRUE(diff.regressed());
  ASSERT_EQ(diff.missing_in_current.size(), 1u);
  EXPECT_EQ(diff.missing_in_current[0], "wall_ms");
  EXPECT_NE(diff.summary(10.0).find("MISSING"), std::string::npos);
}

TEST(BenchDiff, NewMetricInCurrentIsSurfacedButNeverGates) {
  const BenchDiffResult diff =
      bench_diff(R"({"wall_ms": 100})",
                 R"({"wall_ms": 100, "resume_ms": 5, "seed": 1})", 0.5);
  EXPECT_FALSE(diff.regressed());
  ASSERT_EQ(diff.new_in_current.size(), 2u);
  EXPECT_EQ(diff.new_in_current[0], "resume_ms");
  EXPECT_EQ(diff.new_in_current[1], "seed");
  EXPECT_NE(diff.summary(0.5).find("new-metric resume_ms"),
            std::string::npos);
  // The reverse direction stays a hard gate failure, and the vanished key
  // must not be misreported as new.
  const BenchDiffResult reverse =
      bench_diff(R"({"wall_ms": 100, "resume_ms": 5})",
                 R"({"wall_ms": 100})", 0.5);
  EXPECT_TRUE(reverse.regressed());
  EXPECT_TRUE(reverse.new_in_current.empty());
  EXPECT_EQ(reverse.summary(0.5).find("new-metric"), std::string::npos);
}

// --- Interval validation -------------------------------------------------

TEST(WindowIntervalError, RejectsZeroAndOverflowingIntervals) {
  EXPECT_EQ(window_interval_error(1'000'000, 1), "");
  EXPECT_NE(window_interval_error(0, 1), "");
  EXPECT_NE(window_interval_error(1'000'000, 0), "");
  // A window width beyond the simulated-clock headroom is rejected even
  // with stride 1...
  EXPECT_NE(window_interval_error(std::uint64_t{1} << 62, 1), "");
  // ...and a window * stride product that would wrap the clock is caught
  // even though both factors are individually fine.
  EXPECT_NE(
      window_interval_error(std::uint64_t{1} << 40, std::uint64_t{1} << 40),
      "");
  // Large but safe combinations pass.
  EXPECT_EQ(window_interval_error(std::uint64_t{1} << 40, 4), "");
}

// --- EventTracer retention cap -------------------------------------------

TEST(EventTracerCap, DropsBeyondMaxAndCountsDrops) {
  MetricsRegistry metrics;
  EventTracer tracer(&metrics, "sim.");
  tracer.set_max_events(3);
  for (std::uint64_t i = 0; i < 5; ++i) {
    tracer.add_instant("e" + std::to_string(i), i, 0);
  }
  EXPECT_EQ(tracer.events().size(), 3u);
  EXPECT_EQ(tracer.events().front().name, "e0");  // prefix retained
  EXPECT_EQ(tracer.dropped_events(), 2u);
  EXPECT_EQ(metrics.counter("sim.dropped_trace_events").value(), 2u);

  // Metric counters keep updating for dropped simulator events.
  DispatchEvent d;
  tracer.on_dispatch(d);
  EXPECT_EQ(tracer.events().size(), 3u);
  EXPECT_EQ(metrics.counter("sim.dispatches").value(), 1u);
}

TEST(EventTracerCap, ZeroMeansUnlimited) {
  EventTracer tracer;
  tracer.set_max_events(0);
  for (std::uint64_t i = 0; i < 10; ++i) tracer.add_instant("e", i, 0);
  EXPECT_EQ(tracer.events().size(), 10u);
  EXPECT_EQ(tracer.dropped_events(), 0u);
}

// --- RunReport -----------------------------------------------------------

TEST(RunReport, JsonContainsEverySectionAndAnomalies) {
  WindowedCollector collector(1, WindowedOptions{100, 0});
  collector.on_slice(slice(1, 0, 0, 60));
  collector.finalize();

  RunReport report;
  report.command = "run";
  report.name = "smoke";
  report.policy = "proposed";
  report.cores = 4;
  report.suite_key = 12345;
  attach_window_summary(report, collector, AnomalyConfig{});
  PhaseTimers timers;
  timers.record("run", 12.5);
  report.phases_ms = timers.entries();

  report.failed_cells.push_back({"c4.g0.base", 2, true, "timed out"});

  const std::string json = run_report_to_json(report);
  EXPECT_NE(json.find("\"schema\": 5"), std::string::npos);
  EXPECT_NE(json.find("\"command\": \"run\""), std::string::npos);
  EXPECT_NE(json.find("\"suite_key\": 12345"), std::string::npos);
  EXPECT_NE(json.find("\"windows\""), std::string::npos);
  EXPECT_NE(json.find("\"closed\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"anomalies\": []"), std::string::npos);
  EXPECT_NE(json.find("\"run\": 12.5"), std::string::npos);
  EXPECT_NE(json.find("\"failed_cells\": [{\"label\": \"c4.g0.base\", "
                      "\"attempts\": 2, \"timed_out\": true, "
                      "\"reason\": \"timed out\"}]"),
            std::string::npos);
  EXPECT_EQ(report.window_jobs_completed, 1u);

  // Deterministic-report mode: phase timers stay out of the document so
  // identical runs render byte-identical JSON.
  report.include_phases = false;
  const std::string stripped = run_report_to_json(report);
  EXPECT_NE(stripped.find("\"phases_ms\": {}"), std::string::npos);
  EXPECT_EQ(stripped.find("12.5"), std::string::npos);

  Anomaly anomaly;
  anomaly.rule = Anomaly::Rule::kIdleSpike;
  anomaly.window = 3;
  anomaly.value = 2.0;
  anomaly.reference = 1.0;
  anomaly.message = "idle \"spike\"";
  const std::string rendered = anomaly_to_json(anomaly);
  EXPECT_NE(rendered.find("\"rule\":\"idle-spike\""), std::string::npos);
  EXPECT_NE(rendered.find("\\\"spike\\\""), std::string::npos);
}

TEST(RunReport, PortfolioSectionRendersWinRatesAndSwitches) {
  RunReport report;
  const std::string without = run_report_to_json(report);
  EXPECT_EQ(without.find("\"portfolio\""), std::string::npos);

  report.policy_win_rates.push_back({"optimal", 3, 0.75});
  report.policy_win_rates.push_back({"sjf", 1, 0.25});
  report.policy_switches.push_back({2, 2000000, "optimal", "sjf"});
  const std::string json = run_report_to_json(report);
  EXPECT_NE(json.find("\"portfolio\": {\"win_rates\": [{\"policy\": "
                      "\"optimal\", \"windows_won\": 3, \"win_rate\": "
                      "0.75}"),
            std::string::npos);
  EXPECT_NE(json.find("\"switches\": [{\"window\": 2, \"time\": 2000000, "
                      "\"from\": \"optimal\", \"to\": \"sjf\"}]"),
            std::string::npos);
}

TEST(RunReport, DagSectionRendersOnlyWhenPresent) {
  RunReport report;
  const std::string without = run_report_to_json(report);
  EXPECT_EQ(without.find("\"dag\""), std::string::npos);

  RunReport::DagSummary dag;
  dag.nodes = 6;
  dag.edges = 7;
  dag.releases = 5;
  dag.ready_peak = 3;
  dag.max_rank = 2;
  dag.release_latency_cycles = 12345;
  dag.cp_slack_total = 4;
  report.dag = dag;
  const std::string json = run_report_to_json(report);
  EXPECT_NE(json.find("\"dag\": {\"nodes\": 6, \"edges\": 7, "
                      "\"releases\": 5, \"ready_peak\": 3, \"max_rank\": 2, "
                      "\"release_latency_cycles\": 12345, "
                      "\"cp_slack_total\": 4}"),
            std::string::npos);
}

// --- End-to-end determinism ----------------------------------------------

// One suite build shared by the integration tests below; the optimal
// policy needs no predictor training, keeping the fixture cheap.
struct World {
  Scenario base;
  ScenarioContext context;
};

World& world() {
  static World* w = [] {
    Scenario s;
    s.name = "windowed-fixture";
    s.system = Scenario::SystemKind::kScaledHeterogeneous;
    s.cores = 4;
    s.policy = "optimal";
    s.seed = 42;
    s.arrivals.count = 250;
    s.arrivals.mean_interarrival_cycles = 40000.0;
    s.suite.kernel_scale = 0.25;
    s.suite.variants_per_kernel = 1;
    return new World{s, ScenarioContext(s)};
  }();
  return *w;
}

std::string windows_jsonl_for_run(std::size_t threads) {
  World& w = world();
  ThreadPool::set_global_threads(threads);
  WindowedCollector collector(w.base.cores, WindowedOptions{1'000'000, 0},
                              &w.context.suite());
  const ScenarioOutcome outcome =
      run_scenario(w.base, w.context, &collector);
  collector.finalize();
  EXPECT_EQ(outcome.stream.invariant_violations(), 0u);
  std::ostringstream out;
  collector.write_jsonl(out);
  return out.str();
}

TEST(WindowedDeterminism, JsonlByteIdenticalAcrossThreadCounts) {
  const std::string jsonl1 = windows_jsonl_for_run(1);
  const std::string jsonl3 = windows_jsonl_for_run(3);
  const std::string jsonl4 = windows_jsonl_for_run(4);
  ThreadPool::set_global_threads(ThreadPool::default_threads());
  EXPECT_FALSE(jsonl1.empty());
  EXPECT_EQ(jsonl1, jsonl3);
  EXPECT_EQ(jsonl1, jsonl4);
}

TEST(WindowedDeterminism, StreamAndBatchWindowsAreByteIdentical) {
  World& w = world();
  const Scenario& s = w.base;

  // Batch: materialise the arrivals, run via run(vector).
  OptimalPolicy policy;
  MulticoreSimulator simulator(s.make_system(), w.context.suite(),
                               w.context.energy(), policy, s.discipline);
  WindowedCollector batch_collector(s.cores, WindowedOptions{1'000'000, 0},
                                    &w.context.suite());
  simulator.set_observer(&batch_collector);
  Rng rng(s.seed ^ 0xa5a5a5a5ULL);
  const std::vector<JobArrival> arrivals =
      generate_arrivals(w.context.scheduling_ids(), s.arrivals, rng);
  const SimulationResult batch = simulator.run(arrivals);
  batch_collector.finalize();

  WindowedCollector stream_collector(s.cores, WindowedOptions{1'000'000, 0},
                                     &w.context.suite());
  const ScenarioOutcome streamed =
      run_scenario(s, w.context, &stream_collector);
  stream_collector.finalize();

  EXPECT_EQ(batch.completed_jobs, streamed.result.completed_jobs);
  std::ostringstream batch_jsonl;
  batch_collector.write_jsonl(batch_jsonl);
  std::ostringstream stream_jsonl;
  stream_collector.write_jsonl(stream_jsonl);
  EXPECT_FALSE(batch_jsonl.str().empty());
  EXPECT_EQ(batch_jsonl.str(), stream_jsonl.str());

  // The window stream accounts for every completed job exactly once.
  std::uint64_t window_jobs = 0;
  for (const WindowRecord& window : stream_collector.windows()) {
    window_jobs += window.jobs_completed;
  }
  EXPECT_EQ(window_jobs, streamed.result.completed_jobs);
}

TEST(WindowedDeterminism, GoldenStreamingSmokeWindows) {
  const std::string dir =
      std::string(HETSCHED_SOURCE_DIR) + "/examples/scenarios/";
  std::ifstream in(dir + "streaming_smoke.scn");
  ASSERT_TRUE(in) << "missing " << dir << "streaming_smoke.scn";
  const Scenario scenario = Scenario::parse(in);

  const ScenarioContext context(scenario);
  // Mirror the CLI scenario path: span collector ahead of the windowed
  // collector so the golden pins real lat_* percentile columns.
  JobSpanCollector spans(scenario.policy, 1'000'000);
  WindowedCollector collector(scenario.make_system().core_count(),
                              WindowedOptions{1'000'000, 0},
                              &context.suite());
  collector.set_span_source(&spans);
  FanoutObserver fanout({&spans, &collector});
  const ScenarioOutcome outcome = run_scenario(scenario, context, &fanout);
  spans.finalize();
  collector.finalize();
  EXPECT_EQ(outcome.stream.invariant_violations(), 0u);
  EXPECT_EQ(spans.jobs_completed(), outcome.result.completed_jobs);
  std::ostringstream jsonl;
  collector.write_jsonl(jsonl);

  const std::string golden_path = dir + "streaming_smoke.windows.jsonl";
  if (std::getenv("HETSCHED_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(golden_path);
    out << jsonl.str();
    ASSERT_TRUE(out) << "cannot write " << golden_path;
    GTEST_SKIP() << "golden windows regenerated at " << golden_path;
  }
  std::ifstream golden_in(golden_path);
  ASSERT_TRUE(golden_in) << "missing golden windows " << golden_path
                         << "; regenerate with HETSCHED_REGEN_GOLDEN=1";
  std::stringstream golden;
  golden << golden_in.rdbuf();
  EXPECT_EQ(jsonl.str(), golden.str())
      << "window stream diverged from the checked-in golden; if the "
         "change is intended, regenerate with HETSCHED_REGEN_GOLDEN=1 "
         "and commit the new file";
}

}  // namespace
}  // namespace hetsched
