// Tests for src/workload: suite characterisation, execution-statistics
// derivation, arrival generation, and ANN dataset assembly.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "util/stats.hpp"
#include "workload/arrivals.hpp"
#include "workload/characterization.hpp"
#include "workload/dataset_builder.hpp"

namespace hetsched {
namespace {

// One shared miniature suite for the whole file (characterisation is the
// expensive step).
const CharacterizedSuite& quick_suite() {
  static const CharacterizedSuite suite = [] {
    SuiteOptions options;
    options.kernel_scale = 0.25;
    options.variants_per_kernel = 2;
    return CharacterizedSuite::build(EnergyModel{CactiModel{}}, options);
  }();
  return suite;
}

TEST(CharacterizationTest, SuiteShape) {
  const CharacterizedSuite& suite = quick_suite();
  EXPECT_EQ(suite.size(), 19u * 2u);
  EXPECT_EQ(suite.scheduling_ids().size(), 19u);
  EXPECT_EQ(suite.training_ids().size(), 19u);
  // Scheduling and training ids partition the suite.
  std::set<std::size_t> all;
  for (auto id : suite.scheduling_ids()) all.insert(id);
  for (auto id : suite.training_ids()) all.insert(id);
  EXPECT_EQ(all.size(), suite.size());
}

TEST(CharacterizationTest, EveryBenchmarkCoversTheFullDesignSpace) {
  for (const BenchmarkProfile& b : quick_suite().all()) {
    ASSERT_EQ(b.per_config.size(), 18u) << b.instance.name;
    for (std::size_t i = 0; i < 18; ++i) {
      EXPECT_EQ(b.per_config[i].config, DesignSpace::all()[i]);
      EXPECT_GT(b.per_config[i].energy.total().value(), 0.0);
      EXPECT_GT(b.per_config[i].energy.total_cycles, 0u);
      EXPECT_EQ(b.per_config[i].cache.hits + b.per_config[i].cache.misses,
                b.per_config[i].cache.accesses);
    }
  }
}

TEST(CharacterizationTest, ProfileForLooksUpByConfig) {
  const BenchmarkProfile& b = quick_suite().benchmark(0);
  const CacheConfig config{4096, 2, 32};
  EXPECT_EQ(b.profile_for(config).config, config);
}

TEST(CharacterizationTest, BestOverallIsTheMinimum) {
  for (const BenchmarkProfile& b : quick_suite().all()) {
    const ConfigProfile& best = b.best_overall();
    for (const ConfigProfile& cp : b.per_config) {
      EXPECT_LE(best.energy.total().value(), cp.energy.total().value());
    }
    EXPECT_EQ(b.oracle_best_size(), best.config.size_bytes);
  }
}

TEST(CharacterizationTest, BestForSizeStaysInSize) {
  for (const BenchmarkProfile& b : quick_suite().all()) {
    for (std::uint32_t size : DesignSpace::sizes()) {
      const ConfigProfile& best = b.best_for_size(size);
      EXPECT_EQ(best.config.size_bytes, size);
      for (const ConfigProfile& cp : b.per_config) {
        if (cp.config.size_bytes == size) {
          EXPECT_LE(best.energy.total().value(), cp.energy.total().value());
        }
      }
    }
  }
}

TEST(CharacterizationTest, BaseStatisticsAreConsistent) {
  for (const BenchmarkProfile& b : quick_suite().all()) {
    const ExecutionStatistics& s = b.base_statistics;
    EXPECT_DOUBLE_EQ(s.total_instructions,
                     static_cast<double>(b.counters.total_instructions()));
    EXPECT_GT(s.l1_accesses, 0.0);
    EXPECT_GE(s.l1_misses, s.compulsory_misses > 0 ? 1.0 : 0.0);
    EXPECT_GE(s.l1_miss_rate, 0.0);
    EXPECT_LE(s.l1_miss_rate, 1.0);
    EXPECT_GT(s.working_set_bytes, 0.0);
    EXPECT_LE(s.working_set_bytes, b.footprint_bytes);
    EXPECT_GE(s.load_fraction, 0.0);
    EXPECT_LE(s.load_fraction, 1.0);
    EXPECT_LE(s.mem_intensity, 1.0);
    EXPECT_LE(s.branch_fraction, 1.0);
    // The 18-vector round trip.
    const auto vec = s.to_vector();
    EXPECT_EQ(vec.size(), kNumExecutionStatistics);
    EXPECT_DOUBLE_EQ(vec[0], s.total_instructions);
    EXPECT_DOUBLE_EQ(vec[17], s.branch_fraction);
  }
}

TEST(CharacterizationTest, DeterministicRebuild) {
  SuiteOptions options;
  options.kernel_scale = 0.25;
  options.variants_per_kernel = 1;
  const EnergyModel model{CactiModel{}};
  const CharacterizedSuite a = CharacterizedSuite::build(model, options);
  const CharacterizedSuite b = CharacterizedSuite::build(model, options);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.benchmark(i).best_overall().energy.total().value(),
              b.benchmark(i).best_overall().energy.total().value());
  }
}

TEST(StatisticsTest, ComputeStatisticsDerivesRatios) {
  RawCounters counters;
  counters.loads = 60;
  counters.stores = 40;
  counters.branches = 50;
  counters.taken_branches = 30;
  counters.int_ops = 300;
  counters.fp_ops = 50;
  CacheSimResult sim;
  sim.config = DesignSpace::base_config();
  sim.stats.accesses = 100;
  sim.stats.hits = 90;
  sim.stats.misses = 10;
  sim.stats.compulsory_misses = 8;
  EnergyBreakdown energy;
  energy.total_cycles = 2000;
  MemTrace trace{{0x1000, 4, false}, {0x1004, 4, true}, {0x1000, 4, false}};

  const ExecutionStatistics s =
      compute_statistics(counters, sim, energy, trace);
  EXPECT_DOUBLE_EQ(s.total_instructions, 500.0);
  EXPECT_DOUBLE_EQ(s.cycles, 2000.0);
  EXPECT_DOUBLE_EQ(s.load_fraction, 0.6);
  EXPECT_DOUBLE_EQ(s.mem_intensity, 100.0 / 500.0);
  EXPECT_DOUBLE_EQ(s.compute_intensity, 350.0 / 500.0);
  EXPECT_DOUBLE_EQ(s.branch_fraction, 50.0 / 500.0);
  EXPECT_DOUBLE_EQ(s.l1_miss_rate, 0.1);
  EXPECT_DOUBLE_EQ(s.working_set_bytes, 8.0);  // two distinct words
}

TEST(ArrivalsTest, CountAndSortedness) {
  Rng rng(1);
  ArrivalOptions options;
  options.count = 500;
  const auto arrivals = generate_arrivals({0, 1, 2}, options, rng);
  ASSERT_EQ(arrivals.size(), 500u);
  for (std::size_t i = 1; i < arrivals.size(); ++i) {
    EXPECT_LE(arrivals[i - 1].arrival, arrivals[i].arrival);
  }
  for (const JobArrival& a : arrivals) {
    EXPECT_LT(a.benchmark_id, 3u);
  }
}

TEST(ArrivalsTest, UniformMeanGapIsRespected) {
  Rng rng(2);
  ArrivalOptions options;
  options.count = 20000;
  options.mean_interarrival_cycles = 1000.0;
  const auto arrivals = generate_arrivals({0}, options, rng);
  const double mean_gap = static_cast<double>(arrivals.back().arrival) /
                          static_cast<double>(arrivals.size());
  EXPECT_NEAR(mean_gap, 1000.0, 25.0);
}

TEST(ArrivalsTest, FixedDistributionIsExactlyPeriodic) {
  Rng rng(3);
  ArrivalOptions options;
  options.count = 10;
  options.mean_interarrival_cycles = 100.0;
  options.distribution = InterarrivalDistribution::kFixed;
  const auto arrivals = generate_arrivals({0}, options, rng);
  for (std::size_t i = 0; i < arrivals.size(); ++i) {
    EXPECT_EQ(arrivals[i].arrival, (i + 1) * 100);
  }
}

TEST(ArrivalsTest, ExponentialMeanGap) {
  Rng rng(4);
  ArrivalOptions options;
  options.count = 20000;
  options.mean_interarrival_cycles = 500.0;
  options.distribution = InterarrivalDistribution::kExponential;
  const auto arrivals = generate_arrivals({0}, options, rng);
  const double mean_gap = static_cast<double>(arrivals.back().arrival) /
                          static_cast<double>(arrivals.size());
  EXPECT_NEAR(mean_gap, 500.0, 15.0);
}

TEST(ArrivalsTest, AllBenchmarksGetSampled) {
  Rng rng(5);
  ArrivalOptions options;
  options.count = 2000;
  const std::vector<std::size_t> ids{3, 7, 11, 15};
  const auto arrivals = generate_arrivals(ids, options, rng);
  std::set<std::size_t> seen;
  for (const JobArrival& a : arrivals) seen.insert(a.benchmark_id);
  EXPECT_EQ(seen.size(), ids.size());
}

TEST(ArrivalsTest, BurstinessPreservesLongRunMeanButClustersArrivals) {
  ArrivalOptions smooth;
  smooth.count = 30000;
  smooth.mean_interarrival_cycles = 1000.0;
  ArrivalOptions bursty = smooth;
  bursty.burstiness = 6.0;
  bursty.phase_switch = 0.05;

  Rng ra(7), rb(7);
  const auto a = generate_arrivals({0}, smooth, ra);
  const auto b = generate_arrivals({0}, bursty, rb);
  const double mean_a = static_cast<double>(a.back().arrival) /
                        static_cast<double>(a.size());
  const double mean_b = static_cast<double>(b.back().arrival) /
                        static_cast<double>(b.size());
  // Long-run mean preserved within a few percent...
  EXPECT_NEAR(mean_b, mean_a, 0.15 * mean_a);
  // ...but gap variance is much larger (clustering).
  auto gap_variance = [](const std::vector<JobArrival>& arrivals) {
    RunningStats s;
    for (std::size_t i = 1; i < arrivals.size(); ++i) {
      s.add(static_cast<double>(arrivals[i].arrival -
                                arrivals[i - 1].arrival));
    }
    return s.variance();
  };
  EXPECT_GT(gap_variance(b), 3.0 * gap_variance(a));
}

TEST(ArrivalsTest, BurstinessOneIsIdentityBehaviour) {
  ArrivalOptions options;
  options.count = 100;
  options.burstiness = 1.0;
  Rng a(8), b(8);
  const auto plain = generate_arrivals({0}, options, a);
  options.phase_switch = 0.9;  // irrelevant when burstiness == 1
  const auto again = generate_arrivals({0}, options, b);
  for (std::size_t i = 0; i < plain.size(); ++i) {
    EXPECT_EQ(plain[i].arrival, again[i].arrival);
  }
}

TEST(ArrivalsTest, DeterministicForSameSeed) {
  ArrivalOptions options;
  options.count = 100;
  Rng a(6), b(6);
  const auto x = generate_arrivals({0, 1}, options, a);
  const auto y = generate_arrivals({0, 1}, options, b);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_EQ(x[i].arrival, y[i].arrival);
    EXPECT_EQ(x[i].benchmark_id, y[i].benchmark_id);
  }
}

TEST(DatasetBuilderTest, SizeTargetEncodingRoundTrips) {
  EXPECT_DOUBLE_EQ(size_to_target(2048), 1.0);
  EXPECT_DOUBLE_EQ(size_to_target(4096), 2.0);
  EXPECT_DOUBLE_EQ(size_to_target(8192), 3.0);
  EXPECT_EQ(target_to_size(1.0), 2048u);
  EXPECT_EQ(target_to_size(2.4), 4096u);
  EXPECT_EQ(target_to_size(2.6), 8192u);
  EXPECT_EQ(target_to_size(-3.0), 2048u) << "clamped below";
  EXPECT_EQ(target_to_size(9.0), 8192u) << "clamped above";
  EXPECT_EQ(size_target_classes().size(), 3u);
}

TEST(DatasetBuilderTest, TransformCompressesCountsOnly) {
  EXPECT_DOUBLE_EQ(transform_statistic(0, 0.0), 0.0);
  EXPECT_NEAR(transform_statistic(0, 1e6), std::log1p(1e6), 1e-12);
  // Ratio columns (>= 14) pass through.
  EXPECT_DOUBLE_EQ(transform_statistic(14, 0.75), 0.75);
  EXPECT_DOUBLE_EQ(transform_statistic(17, 0.1), 0.1);
}

TEST(DatasetBuilderTest, BuildsRowsWithGroupsAndValidTargets) {
  const CharacterizedSuite& suite = quick_suite();
  const Dataset data = build_ann_dataset(suite, suite.training_ids());
  EXPECT_EQ(data.size(), suite.training_ids().size());
  EXPECT_EQ(data.feature_count(), kNumExecutionStatistics);
  EXPECT_EQ(data.groups.size(), data.size());
  for (std::size_t r = 0; r < data.size(); ++r) {
    const double t = data.targets.at(r, 0);
    EXPECT_TRUE(t == 1.0 || t == 2.0 || t == 3.0);
  }
  // Empty id list means "everything".
  const Dataset all = build_ann_dataset(suite, {});
  EXPECT_EQ(all.size(), suite.size());
}

}  // namespace
}  // namespace hetsched
