// hetsched command-line driver.
//
//   hetsched_cli compare   [common options]
//       run all four Section-V systems over one stream and print the
//       Figure-6-style comparison
//   hetsched_cli run       --system <any registry policy name or
//                                    portfolio:<a>+<b>[@cycles]>
//                          [common options]
//       run one system and print its full accounting
//   hetsched_cli characterize [--kernel <name>]
//       print the Table-1 characterisation (optionally one kernel's
//       per-configuration sweep)
//   hetsched_cli train     --save <file> [common options]
//       train the ANN predictor and persist it
//   hetsched_cli scenario  --file <file.scn> [--profile-cache F] [obs flags]
//       run one scenario file under the streaming driver and print its
//       accounting plus the stream digest
//   hetsched_cli sweep     --file <file.scn> [--sweep-cores LIST]
//                          [--sweep-gaps LIST] [--sweep-policies LIST]
//                          [--shards N]
//       fan a (cores x arrival gap x policy) grid built from the scenario
//       file across the thread pool in contiguous shards; results are
//       bit-identical for every --threads / --shards combination
//   hetsched_cli bench-diff <baseline.json> <current.json> [--tolerance X]
//       compare two BENCH_*.json result files; exits non-zero when any
//       classified metric regressed beyond the tolerance (the CI bench
//       regression gate)
//   hetsched_cli analyze   --report <report.json> [--windows <file.jsonl>]
//                          [--top N] [--out FILE]
//       offline latency forensics over a run report (+ optional windows
//       stream): per-policy breakdown, slowest jobs with phase
//       attribution, hottest windows by tail latency, DAG releases
//   hetsched_cli analyze   --diff <baseline.json> <current.json>
//                          [--tolerance X] [--out FILE]
//       metric-by-metric diff of two run reports; exits non-zero when a
//       classified metric regressed beyond the tolerance
//
// Common options:
//   --arrivals N         number of jobs              (default 5000)
//   --gap CYCLES         mean inter-arrival gap      (default 55000)
//   --seed N             experiment seed             (default 42)
//   --scale X            kernel working-set scale    (default 1.0)
//   --discipline D       fifo | edf | priority       (default fifo)
//   --slack X            deadline slack factor; assigns deadlines when set
//   --load FILE          use a saved predictor snapshot instead of training
//   --threads N          worker threads for characterisation/training/runs
//                        (default: HETSCHED_THREADS or all hardware threads)
//   --profile-cache FILE serve characterisation from this snapshot, building
//                        and refreshing it when missing or stale
//   --fault-plan FILE    inject faults from a fault-plan file
//   --fault-rate P       uniform fault rate for all rate-driven faults
//   --fault-seed N       fault-decision seed (default 1)
//   --trace-out FILE     write a Chrome-trace/Perfetto JSON of the run(s)
//                        (ts = simulated cycles, deterministic)
//   --metrics-out FILE   write the metrics-registry snapshot as JSON
//   --max-trace-events N retain at most N trace events per tracer
//                        (0 = unlimited; default 1M, drops counted)
//   --windows-out FILE   write per-window telemetry as JSONL (run,
//                        scenario and sweep; deterministic)
//   --window-cycles N    tumbling window width in simulated cycles
//                        (default 1000000)
//   --report-out FILE    write the unified run report JSON (config +
//                        suite key, result, metrics, window summary,
//                        anomalies, wall-clock phase timers)
//   --report-deterministic
//                        emit the report with an empty phases_ms section
//                        so two identical runs produce byte-identical
//                        reports (the resume-verification mode)
//
// Crash-safe execution (scenario):
//   --checkpoint-out F   write a resumable checkpoint atomically at every
//                        stride boundary (window-cycles * checkpoint-every)
//   --checkpoint-every N windows per checkpoint stride (default 1)
//   --resume-from F      resume a scenario from a checkpoint file (or a
//                        sweep from a shard manifest); outputs are
//                        bit-identical to the uninterrupted run
//   --halt-after-checkpoints N
//                        stop (exit 3) after writing N checkpoints —
//                        a deterministic stand-in for a crash
//
// Supervised sweeps (sweep):
//   --cell-timeout-ms N  wall-clock budget per cell attempt
//   --cell-retries N     attempts per cell before quarantine (default 1)
//   --cell-backoff-ms N  sleep between attempts of one cell
//   --manifest-out F     persist a shard manifest after every completed
//                        cell; --resume-from it to skip completed cells
#include <charconv>
#include <cmath>
#include <cstdlib>
#include <deque>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "core/policy_registry.hpp"
#include "core/realtime_policy.hpp"
#include "core/serialization.hpp"
#include "experiment/experiment.hpp"
#include "experiment/sweep.hpp"
#include "fault/fault_injector.hpp"
#include "obs/analyzer.hpp"
#include "obs/bench_diff.hpp"
#include "obs/latency.hpp"
#include "obs/observability.hpp"
#include "obs/run_report.hpp"
#include "obs/windowed.hpp"
#include "scenario/checkpoint.hpp"
#include "scenario/scenario_runner.hpp"
#include "util/atomic_file.hpp"
#include "util/csv.hpp"
#include "util/table_printer.hpp"
#include "util/thread_pool.hpp"
#include "workload/profile_cache.hpp"

namespace {

using namespace hetsched;

struct CliOptions {
  std::string command;
  std::string system = "proposed";
  std::string kernel;
  std::string save_path;
  std::string load_path;
  std::string discipline = "fifo";
  std::optional<double> slack;
  std::string fault_plan_path;
  std::optional<double> fault_rate;
  std::optional<std::uint64_t> fault_seed;
  std::string trace_out_path;
  std::string metrics_out_path;
  std::string report_out_path;
  std::string windows_out_path;
  std::uint64_t window_cycles = 1'000'000;
  std::size_t max_trace_events = EventTracer::kDefaultMaxEvents;
  double tolerance = 0.5;  // bench-diff/analyze-diff slack before failing
  std::vector<std::string> positional;  // bench-diff/analyze file operands

  // analyze: forensics inputs and presentation.
  std::string analyze_report_path;
  std::string analyze_windows_path;
  std::string analyze_out_path;
  std::size_t analyze_top = 8;
  bool analyze_diff_mode = false;
  // Emit Perfetto async job spans ('b'/'e' pairs) into --trace-out.
  // Opt-in: span events double the trace volume and change trace bytes.
  bool trace_spans = false;
  std::string scenario_path;
  std::string sweep_cores = "4";
  std::string sweep_gaps;  // empty: the scenario file's mean-gap
  std::string sweep_policies = "base,proposed";
  std::size_t shards = 0;  // 0: one shard per cell
  ExperimentOptions experiment;

  // Crash-safe execution.
  std::string checkpoint_out_path;
  std::uint64_t checkpoint_every = 1;
  std::string resume_from_path;  // scenario: checkpoint; sweep: manifest
  std::uint64_t halt_after_checkpoints = 0;
  std::uint64_t cell_timeout_ms = 0;
  std::uint32_t cell_retries = 1;
  std::uint64_t cell_backoff_ms = 0;
  std::string manifest_out_path;
  bool deterministic_report = false;

  bool wants_windows() const {
    return !report_out_path.empty() || !windows_out_path.empty();
  }
  bool wants_checkpointing() const {
    return !checkpoint_out_path.empty() || !resume_from_path.empty() ||
           halt_after_checkpoints > 0;
  }
  bool wants_supervision() const {
    return cell_timeout_ms > 0 || cell_retries > 1 || cell_backoff_ms > 0 ||
           !manifest_out_path.empty() || !resume_from_path.empty();
  }
};

// Observability state for one CLI invocation: the shared metrics
// registry, the runtime tracer fed by the global probe (thread-pool
// jobs, profile-cache outcomes), and one tracer per simulated system.
// Everything is written out once, after the command finishes.
struct ObsSession {
  std::string trace_path;
  std::string metrics_path;
  std::size_t max_trace_events = EventTracer::kDefaultMaxEvents;
  MetricsRegistry metrics;
  EventTracer runtime;           // probe events only; no sim.* counters
  ProbeRecorder recorder{metrics, &runtime};
  std::deque<EventTracer> sim_tracers;  // stable addresses
  std::vector<std::pair<std::string, const EventTracer*>> processes{
      {"runtime", &runtime}};

  bool job_spans = false;  // forward Perfetto async job spans

  EventTracer& add_system_tracer(const std::string& system) {
    sim_tracers.emplace_back(&metrics, system + ".sim.");
    sim_tracers.back().set_max_events(max_trace_events);
    sim_tracers.back().set_job_spans(job_spans);
    processes.emplace_back(system, &sim_tracers.back());
    return sim_tracers.back();
  }

  // Returns false (with a message on stderr) when an output file cannot
  // be written.
  bool finish() {
    if (!trace_path.empty()) {
      std::ostringstream out;
      write_chrome_trace(out, processes);
      if (!atomic_write_file(trace_path, out.str())) {
        std::cerr << "cannot write " << trace_path << "\n";
        return false;
      }
      std::cout << "trace written to " << trace_path << "\n";
    }
    if (!metrics_path.empty()) {
      std::ostringstream out;
      metrics.write_json(out);
      if (!atomic_write_file(metrics_path, out.str())) {
        std::cerr << "cannot write " << metrics_path << "\n";
        return false;
      }
      std::cout << "metrics written to " << metrics_path << "\n";
    }
    return true;
  }
};

[[noreturn]] void usage(const std::string& error = "") {
  if (!error.empty()) std::cerr << "error: " << error << "\n\n";
  std::cerr <<
      "usage: hetsched_cli "
      "<compare|run|characterize|train|scenario|sweep|bench-diff|analyze> "
      "[options]\n"
      "       hetsched_cli bench-diff BASELINE.json CURRENT.json\n"
      "                    [--tolerance X]\n"
      "       hetsched_cli analyze --report REPORT.json\n"
      "                    [--windows FILE.jsonl] [--top N] [--out FILE]\n"
      "       hetsched_cli analyze --diff BASELINE.json CURRENT.json\n"
      "                    [--tolerance X] [--out FILE]\n"
      "  --system S      base|optimal|energy-centric|proposed|realtime|\n"
      "                  sjf|energy-greedy|random|oracle|cp-aware|\n"
      "                  portfolio:<a>+<b>[@cycles] (competitive\n"
      "                  meta-scheduler over the named contenders)\n"
      "  --arrivals N    jobs in the stream (default 5000)\n"
      "  --gap CYCLES    mean inter-arrival gap (default 55000)\n"
      "  --seed N        experiment seed (default 42)\n"
      "  --cores N       cores per simulated system (default 4; 4 = the\n"
      "                  paper machines, otherwise the scaled layout)\n"
      "  --scale X       kernel working-set scale (default 1.0)\n"
      "  --discipline D  fifo|edf|priority ready-queue order\n"
      "  --slack X       assign deadlines = arrival + X*base cycles\n"
      "  --kernel NAME   (characterize) single-kernel sweep\n"
      "  --save FILE     (train) persist the predictor snapshot\n"
      "  --load FILE     use a saved predictor snapshot\n"
      "  --threads N     worker threads (default: HETSCHED_THREADS or all\n"
      "                  hardware threads)\n"
      "  --profile-cache FILE\n"
      "                  persistent characterisation snapshot to load or\n"
      "                  refresh\n"
      "  --fault-plan F  inject faults from a fault-plan file\n"
      "  --fault-rate P  uniform rate in [0,1] for reconfig failures,\n"
      "                  stuck jobs and counter corruption\n"
      "  --fault-seed N  fault-decision seed (default 1)\n"
      "  --trace-out F   write a Chrome-trace/Perfetto JSON (ts in\n"
      "                  simulated cycles; open in ui.perfetto.dev)\n"
      "  --metrics-out F write the metrics-registry snapshot as JSON\n"
      "  --max-trace-events N\n"
      "                  retain at most N trace events per tracer\n"
      "                  (0 = unlimited; default 1000000)\n"
      "  --windows-out F write per-window telemetry JSONL (run/scenario/\n"
      "                  sweep; one line per closed tumbling window)\n"
      "  --window-cycles N\n"
      "                  window width in simulated cycles (default 1e6)\n"
      "  --report-out F  write the unified run-report JSON\n"
      "  --report-deterministic\n"
      "                  emit the report with empty phases_ms so identical\n"
      "                  runs produce byte-identical reports\n"
      "  --checkpoint-out F\n"
      "                  (scenario) write a resumable checkpoint atomically\n"
      "                  at every stride boundary\n"
      "  --checkpoint-every N\n"
      "                  (scenario) windows per checkpoint stride (default 1)\n"
      "  --resume-from F (scenario) resume from a checkpoint file;\n"
      "                  (sweep) resume from a shard manifest\n"
      "  --halt-after-checkpoints N\n"
      "                  (scenario) stop with exit 3 after N checkpoints,\n"
      "                  simulating a crash deterministically\n"
      "  --cell-timeout-ms N\n"
      "                  (sweep) wall-clock budget per cell attempt\n"
      "  --cell-retries N\n"
      "                  (sweep) attempts per cell before quarantine\n"
      "  --cell-backoff-ms N\n"
      "                  (sweep) sleep between attempts of one cell\n"
      "  --manifest-out F\n"
      "                  (sweep) persist the shard manifest after every\n"
      "                  completed cell\n"
      "  --tolerance X   (bench-diff/analyze --diff) relative slack before\n"
      "                  a metric counts as regressed (default 0.5)\n"
      "  --trace-spans   add Perfetto async job-lifecycle spans ('b'/'e'\n"
      "                  pairs, arrival -> completion) to --trace-out\n"
      "  --report F      (analyze) run-report JSON to analyze\n"
      "  --windows F     (analyze) windows JSONL for the per-window tables\n"
      "  --top N         (analyze) rows in the slowest-jobs and hottest-\n"
      "                  windows tables (default 8)\n"
      "  --diff          (analyze) diff two reports instead of rendering\n"
      "                  one\n"
      "  --out F         (analyze) write the analysis there instead of\n"
      "                  stdout\n"
      "  --file F        (scenario/sweep) scenario description file\n"
      "  --sweep-cores L   (sweep) comma list of core counts (default 4)\n"
      "  --sweep-gaps L    (sweep) comma list of mean gaps (default: the\n"
      "                    scenario file's mean-gap)\n"
      "  --sweep-policies L\n"
      "                  (sweep) comma list of policies (default\n"
      "                  base,proposed)\n"
      "  --shards N      (sweep) contiguous shards to split the grid into\n"
      "                  (default: one per cell)\n";
  std::exit(2);
}

// Flag-value parsing that rejects garbage instead of silently truncating
// it (std::stoull("12abc") == 12): the whole token must parse, and the
// value must lie in the flag's legal range.
std::uint64_t parse_count(const std::string& flag, const std::string& text,
                          std::uint64_t min_value) {
  std::uint64_t value = 0;
  const char* begin = text.c_str();
  const char* end = begin + text.size();
  const auto [parsed_end, err] = std::from_chars(begin, end, value, 10);
  if (text.empty() || err != std::errc{} || parsed_end != end) {
    usage(flag + " expects a non-negative integer, got '" + text + "'");
  }
  if (value < min_value) {
    usage(flag + " must be at least " + std::to_string(min_value) +
          ", got '" + text + "'");
  }
  return value;
}

// Output-path hardening: fail fast (before minutes of simulation) when a
// requested artifact would land in a directory that does not exist —
// atomic temp+rename cannot create parents.
void require_parent_dir(const std::string& flag, const std::string& path) {
  if (path.empty()) return;
  const std::filesystem::path parent =
      std::filesystem::path(path).parent_path();
  std::error_code ec;
  if (!parent.empty() && !std::filesystem::is_directory(parent, ec)) {
    usage(flag + ": directory '" + parent.string() + "' does not exist");
  }
}

double parse_real(const std::string& flag, const std::string& text,
                  double min_value, double max_value) {
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  if (text.empty() || end != text.c_str() + text.size() ||
      !std::isfinite(value) || value < min_value || value > max_value) {
    std::ostringstream range;
    range << "[" << min_value << ", " << max_value << "]";
    usage(flag + " expects a number in " + range.str() + ", got '" + text +
          "'");
  }
  return value;
}

CliOptions parse(int argc, char** argv) {
  if (argc < 2) usage();
  CliOptions options;
  options.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage("missing value for " + flag);
      return argv[++i];
    };
    if (flag == "--system") {
      options.system = next();
    } else if (flag == "--arrivals") {
      options.experiment.arrivals.count =
          static_cast<std::size_t>(parse_count(flag, next(), 1));
    } else if (flag == "--gap") {
      options.experiment.arrivals.mean_interarrival_cycles =
          parse_real(flag, next(), 1.0, 1e15);
    } else if (flag == "--seed") {
      options.experiment.seed = parse_count(flag, next(), 0);
    } else if (flag == "--cores") {
      options.experiment.core_count =
          static_cast<std::size_t>(parse_count(flag, next(), 2));
    } else if (flag == "--scale") {
      options.experiment.suite.kernel_scale =
          parse_real(flag, next(), 1e-6, 1e6);
    } else if (flag == "--discipline") {
      options.discipline = next();
    } else if (flag == "--slack") {
      options.slack = parse_real(flag, next(), 1e-6, 1e6);
    } else if (flag == "--kernel") {
      options.kernel = next();
    } else if (flag == "--save") {
      options.save_path = next();
    } else if (flag == "--load") {
      options.load_path = next();
    } else if (flag == "--threads") {
      const std::uint64_t threads = parse_count(flag, next(), 1);
      if (threads > 256) {
        usage(flag + " must be at most 256, got " +
              std::to_string(threads));
      }
      ThreadPool::set_global_threads(static_cast<std::size_t>(threads));
    } else if (flag == "--profile-cache") {
      options.experiment.profile_cache_path = next();
    } else if (flag == "--fault-plan") {
      options.fault_plan_path = next();
    } else if (flag == "--fault-rate") {
      options.fault_rate = parse_real(flag, next(), 0.0, 1.0);
    } else if (flag == "--fault-seed") {
      options.fault_seed = parse_count(flag, next(), 0);
    } else if (flag == "--trace-out") {
      options.trace_out_path = next();
      if (options.trace_out_path.empty()) {
        usage(flag + " expects a file path");
      }
    } else if (flag == "--metrics-out") {
      options.metrics_out_path = next();
      if (options.metrics_out_path.empty()) {
        usage(flag + " expects a file path");
      }
    } else if (flag == "--report-out") {
      options.report_out_path = next();
      if (options.report_out_path.empty()) {
        usage(flag + " expects a file path");
      }
    } else if (flag == "--windows-out") {
      options.windows_out_path = next();
      if (options.windows_out_path.empty()) {
        usage(flag + " expects a file path");
      }
    } else if (flag == "--window-cycles") {
      options.window_cycles = parse_count(flag, next(), 1);
    } else if (flag == "--max-trace-events") {
      options.max_trace_events =
          static_cast<std::size_t>(parse_count(flag, next(), 0));
    } else if (flag == "--tolerance") {
      options.tolerance = parse_real(flag, next(), 0.0, 1e6);
    } else if (flag == "--report" && options.command == "analyze") {
      options.analyze_report_path = next();
      if (options.analyze_report_path.empty()) {
        usage(flag + " expects a file path");
      }
    } else if (flag == "--windows" && options.command == "analyze") {
      options.analyze_windows_path = next();
      if (options.analyze_windows_path.empty()) {
        usage(flag + " expects a file path");
      }
    } else if (flag == "--out" && options.command == "analyze") {
      options.analyze_out_path = next();
      if (options.analyze_out_path.empty()) {
        usage(flag + " expects a file path");
      }
    } else if (flag == "--top") {
      options.analyze_top =
          static_cast<std::size_t>(parse_count(flag, next(), 1));
    } else if (flag == "--diff") {
      options.analyze_diff_mode = true;
    } else if (flag == "--trace-spans") {
      options.trace_spans = true;
    } else if (!flag.starts_with("--") &&
               (options.command == "bench-diff" ||
                options.command == "analyze")) {
      options.positional.push_back(flag);
    } else if (flag == "--file") {
      options.scenario_path = next();
      if (options.scenario_path.empty()) usage(flag + " expects a file path");
    } else if (flag == "--sweep-cores") {
      options.sweep_cores = next();
    } else if (flag == "--sweep-gaps") {
      options.sweep_gaps = next();
    } else if (flag == "--sweep-policies") {
      options.sweep_policies = next();
    } else if (flag == "--shards") {
      options.shards = static_cast<std::size_t>(parse_count(flag, next(), 1));
    } else if (flag == "--checkpoint-out") {
      options.checkpoint_out_path = next();
      if (options.checkpoint_out_path.empty()) {
        usage(flag + " expects a file path");
      }
    } else if (flag == "--checkpoint-every") {
      options.checkpoint_every = parse_count(flag, next(), 1);
    } else if (flag == "--resume-from") {
      options.resume_from_path = next();
      if (options.resume_from_path.empty()) {
        usage(flag + " expects a file path");
      }
    } else if (flag == "--halt-after-checkpoints") {
      options.halt_after_checkpoints = parse_count(flag, next(), 1);
    } else if (flag == "--cell-timeout-ms") {
      options.cell_timeout_ms = parse_count(flag, next(), 1);
    } else if (flag == "--cell-retries") {
      options.cell_retries =
          static_cast<std::uint32_t>(parse_count(flag, next(), 1));
    } else if (flag == "--cell-backoff-ms") {
      options.cell_backoff_ms = parse_count(flag, next(), 0);
    } else if (flag == "--manifest-out") {
      options.manifest_out_path = next();
      if (options.manifest_out_path.empty()) {
        usage(flag + " expects a file path");
      }
    } else if (flag == "--report-deterministic") {
      options.deterministic_report = true;
    } else {
      usage("unknown flag " + flag);
    }
  }
  // Interval sanity shared with the checkpoint driver: both counts must
  // be >= 1 (parse_count enforces that) and the checkpoint stride
  // window_cycles * checkpoint_every must not overflow the simulated
  // clock — a wrapped stride would silently disable checkpointing.
  const std::string interval_error =
      window_interval_error(options.window_cycles, options.checkpoint_every);
  if (!interval_error.empty()) {
    usage("--window-cycles/--checkpoint-every: " + interval_error);
  }
  require_parent_dir("--trace-out", options.trace_out_path);
  require_parent_dir("--metrics-out", options.metrics_out_path);
  require_parent_dir("--report-out", options.report_out_path);
  require_parent_dir("--windows-out", options.windows_out_path);
  require_parent_dir("--checkpoint-out", options.checkpoint_out_path);
  require_parent_dir("--manifest-out", options.manifest_out_path);
  require_parent_dir("--save", options.save_path);
  require_parent_dir("--out", options.analyze_out_path);
  return options;
}

QueueDiscipline parse_discipline(const std::string& name) {
  if (name == "fifo") return QueueDiscipline::kFifo;
  if (name == "edf") return QueueDiscipline::kEdf;
  if (name == "priority") return QueueDiscipline::kPriority;
  usage("unknown discipline " + name);
}

void print_result(const std::string& name, const SimulationResult& r) {
  TablePrinter table({"metric", "value"});
  table.add_row({"total energy",
                 TablePrinter::num(r.total_energy().millijoules(), 2) +
                     " mJ"});
  table.add_row({"  idle",
                 TablePrinter::num(r.idle_energy.millijoules(), 2) + " mJ"});
  table.add_row({"  dynamic",
                 TablePrinter::num(r.dynamic_energy.millijoules(), 2) +
                     " mJ"});
  table.add_row({"  busy static",
                 TablePrinter::num(r.busy_static_energy.millijoules(), 2) +
                     " mJ"});
  table.add_row({"  cpu",
                 TablePrinter::num(r.cpu_energy.millijoules(), 2) + " mJ"});
  table.add_row({"  reconfig",
                 TablePrinter::num(r.reconfig_energy.millijoules(), 2) +
                     " mJ"});
  table.add_row({"makespan", std::to_string(r.makespan) + " cycles"});
  table.add_row({"execution cycles",
                 std::to_string(r.total_execution_cycles)});
  table.add_row({"completed jobs", std::to_string(r.completed_jobs)});
  table.add_row({"stalls", std::to_string(r.stall_events)});
  table.add_row({"profiling runs", std::to_string(r.profiling_runs)});
  table.add_row({"tuning runs", std::to_string(r.tuning_runs)});
  table.add_row({"reconfigurations", std::to_string(r.reconfigurations)});
  if (r.jobs_with_deadline > 0) {
    table.add_row({"deadline misses",
                   std::to_string(r.deadline_misses) + " / " +
                       std::to_string(r.jobs_with_deadline)});
    table.add_row({"preemptions", std::to_string(r.preemptions)});
  }
  if (r.faults.any()) {
    table.add_row({"injected faults", std::to_string(r.faults.injected)});
    table.add_row({"  core failures",
                   std::to_string(r.faults.core_failures) + " (" +
                       std::to_string(r.faults.core_recoveries) +
                       " recovered)"});
    table.add_row({"  reconfig failures",
                   std::to_string(r.faults.reconfig_failures) + " (" +
                       std::to_string(r.faults.reconfig_retries) +
                       " retries)"});
    table.add_row({"  counter corruptions",
                   std::to_string(r.faults.counter_corruptions)});
    table.add_row({"  watchdog fires",
                   std::to_string(r.faults.watchdog_fires)});
    table.add_row({"jobs re-queued by faults",
                   std::to_string(r.faults.jobs_requeued)});
    table.add_row({"degraded executions",
                   std::to_string(r.faults.degraded_executions)});
    table.add_row({"prediction fallbacks",
                   std::to_string(r.faults.prediction_fallbacks)});
  }
  std::cout << "=== " << name << " ===\n";
  table.print(std::cout);
}

// Per-contender win-rate table for a portfolio run, printed after the
// main accounting.
void print_portfolio(const PortfolioStats& stats) {
  std::cout << "portfolio: " << stats.switches.size()
            << " switch(es) over " << stats.windows_closed
            << " selector window(s) of " << stats.window_cycles
            << " cycles; final active policy '" << stats.active << "'\n";
  TablePrinter table({"contender", "windows led", "win rate"});
  for (std::size_t i = 0; i < stats.contenders.size(); ++i) {
    const double rate =
        stats.windows_closed == 0
            ? 0.0
            : static_cast<double>(stats.windows_active[i]) /
                  static_cast<double>(stats.windows_closed);
    table.add_row({stats.contenders[i],
                   std::to_string(stats.windows_active[i]),
                   TablePrinter::num(rate, 3)});
  }
  table.print(std::cout);
}

// One-line DAG release accounting for a dependency-graph scenario,
// printed after the main accounting.
void print_dag(const DagStats& stats) {
  std::cout << "dag: " << stats.nodes << " node(s), " << stats.edges
            << " edge(s), critical path " << stats.max_rank << "; "
            << stats.releases << " dependent release(s), ready peak "
            << stats.ready_peak << ", release latency "
            << stats.release_latency_total << " cycles\n";
}

bool write_text_file(const std::string& path, const std::string& content,
                     const char* what) {
  if (!atomic_write_file(path, content)) {
    std::cerr << "cannot write " << path << "\n";
    return false;
  }
  std::cout << what << " written to " << path << "\n";
  return true;
}

std::string windows_jsonl(const WindowedCollector& collector) {
  std::ostringstream out;
  collector.write_jsonl(out);
  return out.str();
}

// Shared tail of run/scenario/sweep: finish the report skeleton the
// command filled in and write the requested artifacts.
int export_reports(const CliOptions& options, ObsSession* obs,
                   PhaseTimers& timers, RunReport report,
                   const std::string& windows) {
  if (!options.windows_out_path.empty() &&
      !write_text_file(options.windows_out_path, windows, "windows")) {
    return 1;
  }
  if (!options.report_out_path.empty()) {
    if (obs != nullptr) report.metrics_json = obs->metrics.to_json();
    report.phases_ms = timers.entries();
    report.include_phases = !options.deterministic_report;
    if (!write_text_file(options.report_out_path,
                         run_report_to_json(report), "report")) {
      return 1;
    }
  }
  return 0;
}

int cmd_characterize(const CliOptions& options) {
  Experiment experiment(options.experiment);
  const CharacterizedSuite& suite = experiment.suite();
  if (!options.kernel.empty()) {
    // Single-kernel per-configuration sweep.
    for (std::size_t id : experiment.scheduling_ids()) {
      const BenchmarkProfile& b = suite.benchmark(id);
      if (!b.instance.name.starts_with(options.kernel)) continue;
      TablePrinter table({"config", "miss rate", "cycles", "total nJ"});
      for (const ConfigProfile& cp : b.per_config) {
        table.add_row({cp.config.name(),
                       TablePrinter::num(cp.cache.miss_rate(), 4),
                       std::to_string(cp.energy.total_cycles),
                       TablePrinter::num(cp.energy.total().value(), 0)});
      }
      std::cout << b.instance.name << " ("
                << to_string(b.instance.domain) << ", oracle best "
                << b.best_overall().config.name() << ")\n";
      table.print(std::cout);
      return 0;
    }
    std::cerr << "kernel '" << options.kernel << "' not found\n";
    return 1;
  }
  TablePrinter table({"benchmark", "domain", "refs", "oracle best",
                      "best/base energy"});
  for (std::size_t id : experiment.scheduling_ids()) {
    const BenchmarkProfile& b = suite.benchmark(id);
    const ConfigProfile& base =
        b.profile_for(DesignSpace::base_config());
    table.add_row({b.instance.name, std::string(to_string(b.instance.domain)),
                   std::to_string(b.counters.memory_refs()),
                   b.best_overall().config.name(),
                   TablePrinter::num(
                       b.best_overall().energy.total() / base.energy.total(),
                       3)});
  }
  table.print(std::cout);
  return 0;
}

int cmd_train(const CliOptions& options) {
  if (options.save_path.empty()) usage("train requires --save FILE");
  Experiment experiment(options.experiment);
  const PredictorReport& report = experiment.predictor().report();
  std::cout << "trained on " << report.dataset_rows << " rows; test accuracy "
            << TablePrinter::num(report.test_accuracy * 100.0, 1) << "%\n";
  std::ostringstream out;
  PredictorSnapshot::from(experiment.predictor()).save(out);
  if (!atomic_write_file(options.save_path, out.str())) {
    std::cerr << "cannot write " << options.save_path << "\n";
    return 1;
  }
  std::cout << "predictor snapshot written to " << options.save_path
            << "\n";
  return 0;
}

int cmd_run_or_compare(const CliOptions& options, ObsSession* obs) {
  PhaseTimers timers;
  std::optional<Experiment> experiment_storage;
  {
    const auto scope = timers.scope("setup");
    experiment_storage.emplace(options.experiment);
  }
  Experiment& experiment = *experiment_storage;

  // Optional deadline assignment.
  std::vector<JobArrival> arrivals = experiment.arrivals();
  if (options.slack.has_value()) {
    std::vector<Cycles> reference(experiment.suite().size(), 0);
    for (std::size_t id = 0; id < experiment.suite().size(); ++id) {
      reference[id] = experiment.suite()
                          .benchmark(id)
                          .profile_for(DesignSpace::base_config())
                          .energy.total_cycles;
    }
    RealtimeOptions rt;
    rt.slack_factor = *options.slack;
    rt.priority_levels = 3;
    Rng rng(options.experiment.seed ^ 0x5151);
    assign_realtime_attributes(arrivals, reference, rt, rng);
  }

  // Optional snapshot predictor.
  std::optional<PredictorSnapshot> snapshot;
  if (!options.load_path.empty()) {
    std::ifstream in(options.load_path);
    if (!in) {
      std::cerr << "cannot open " << options.load_path << "\n";
      return 1;
    }
    snapshot = PredictorSnapshot::load(in);
    std::cout << "loaded predictor snapshot (" << snapshot->member_count()
              << " nets) from " << options.load_path << "\n";
  }
  const SizePredictor& predictor =
      snapshot.has_value()
          ? static_cast<const SizePredictor&>(*snapshot)
          : static_cast<const SizePredictor&>(experiment.predictor());

  // Optional fault plan: a plan file, a uniform rate, or a file with its
  // rates/seed overridden from the command line.
  std::optional<FaultPlan> fault_plan;
  if (!options.fault_plan_path.empty()) {
    std::ifstream in(options.fault_plan_path);
    if (!in) {
      std::cerr << "cannot open " << options.fault_plan_path << "\n";
      return 1;
    }
    fault_plan = FaultPlan::parse(in);
  }
  if (options.fault_rate.has_value()) {
    if (!fault_plan.has_value()) fault_plan.emplace();
    fault_plan->reconfig_failure_rate = *options.fault_rate;
    fault_plan->stuck_job_rate = *options.fault_rate;
    fault_plan->counter_corruption_rate = *options.fault_rate;
  }
  if (options.fault_seed.has_value()) {
    if (!fault_plan.has_value()) fault_plan.emplace();
    fault_plan->seed = *options.fault_seed;
  }

  const QueueDiscipline discipline = parse_discipline(options.discipline);
  // --cores selects the machine size for every system: the paper layouts
  // at 4 (the default), the scaled heterogeneous layout otherwise.
  const std::size_t cores = options.experiment.core_count;
  const SystemConfig hetero_system =
      cores == 4 ? SystemConfig::paper_quadcore()
                 : SystemConfig::scaled_heterogeneous(cores);
  // Every system the run/compare commands can name comes out of the
  // policy registry — including portfolio:... specs. `keep_policy`
  // (optional) receives the policy after the run so the caller can read
  // selector stats out of a portfolio; compare passes nullptr.
  auto run_system = [&](const std::string& name, ScheduleObserver* observer,
                        std::unique_ptr<SchedulerPolicy>* keep_policy)
      -> SimulationResult {
    const PolicyRegistry& registry = PolicyRegistry::instance();
    if (!registry.known(name)) {
      usage("unknown system " + name + " (expected " +
            registry.names_help() + ")");
    }
    const PolicyContext ctx{&predictor, &experiment.suite(),
                            options.experiment.seed};
    std::unique_ptr<SchedulerPolicy> policy = registry.make(name, ctx);
    // The base system pins every core to the base configuration; all
    // other policies run on the heterogeneous layout.
    const SystemConfig system =
        name == "base" ? SystemConfig::fixed_base(cores) : hetero_system;
    MulticoreSimulator sim(system, experiment.suite(), experiment.energy(),
                           *policy, discipline);
    if (observer != nullptr) sim.set_observer(observer);
    // Each run gets a fresh injector so fault decisions cannot leak
    // between the systems of a compare.
    std::optional<FaultInjector> injector;
    if (fault_plan.has_value()) {
      injector.emplace(*fault_plan);
      sim.set_fault_injector(&*injector);
    }
    SimulationResult result = sim.run(arrivals);
    if (keep_policy != nullptr) *keep_policy = std::move(policy);
    return result;
  };

  if (options.command == "run") {
    EventTracer* tracer =
        obs != nullptr ? &obs->add_system_tracer(options.system) : nullptr;
    std::optional<WindowedCollector> windowed;
    std::optional<JobSpanCollector> spans;
    if (options.wants_windows()) {
      windowed.emplace(cores,
                       WindowedOptions{options.window_cycles, 0},
                       &experiment.suite());
      spans.emplace(options.system, options.window_cycles);
      windowed->set_span_source(&*spans);
    }
    // Span collector before the windowed one: the windowed collector
    // pulls the closed window's latency digest when it closes its own.
    FanoutObserver fanout(
        {tracer, spans.has_value() ? &*spans : nullptr,
         windowed.has_value() ? &*windowed : nullptr});
    ScheduleObserver* observer =
        windowed.has_value() ? static_cast<ScheduleObserver*>(&fanout)
                             : tracer;
    SimulationResult result;
    std::unique_ptr<SchedulerPolicy> run_policy;
    {
      const auto scope = timers.scope("run");
      result = run_system(options.system, observer, &run_policy);
    }
    if (spans.has_value()) spans->finalize();
    if (windowed.has_value()) windowed->finalize();
    if (obs != nullptr) {
      record_result_metrics(obs->metrics, options.system + ".", result);
    }
    print_result(options.system, result);

    RunReport report;
    report.command = "run";
    report.name = options.system;
    report.policy = options.system;
    report.system = options.system == "base"
                        ? "fixed-base"
                        : (cores == 4 ? "paper-quad" : "scaled");
    report.discipline = options.discipline;
    report.cores = cores;
    report.seed = options.experiment.seed;
    report.jobs = arrivals.size();
    report.suite_key =
        suite_cache_key(options.experiment.suite, experiment.energy());
    report.completed_jobs = result.completed_jobs;
    report.makespan = result.makespan;
    report.total_energy_mj = result.total_energy().millijoules();
    if (windowed.has_value()) {
      attach_window_summary(report, *windowed, AnomalyConfig{});
    }
    if (spans.has_value()) attach_latency_summary(report, {&*spans});
    std::string windows =
        windowed.has_value() ? windows_jsonl(*windowed) : std::string();
    if (const auto* portfolio =
            dynamic_cast<const PortfolioPolicy*>(run_policy.get())) {
      const PortfolioStats pstats = portfolio->stats();
      print_portfolio(pstats);
      attach_portfolio_summary(report, pstats);
      if (windowed.has_value()) windows += portfolio_switch_jsonl(pstats);
    }
    return export_reports(options, obs, timers, std::move(report),
                          windows);
  }

  // compare: the four systems are independent (fresh simulator, policy
  // and fault injector each), so they fan out over the shared pool.
  const std::vector<std::string> names = {"base", "optimal",
                                          "energy-centric", "proposed"};
  // Tracers (and their registry entries) are created serially before the
  // fan-out; each then only sees its own run's events, so the merged
  // output is thread-count independent.
  std::vector<EventTracer*> tracers(names.size(), nullptr);
  if (obs != nullptr) {
    for (std::size_t i = 0; i < names.size(); ++i) {
      tracers[i] = &obs->add_system_tracer(names[i]);
    }
  }
  std::vector<SimulationResult> results(names.size());
  ThreadPool::global().parallel_for(names.size(), [&](std::size_t i) {
    results[i] = run_system(names[i], tracers[i], nullptr);
  });
  if (obs != nullptr) {
    for (std::size_t i = 0; i < names.size(); ++i) {
      record_result_metrics(obs->metrics, names[i] + ".", results[i]);
    }
  }
  const SimulationResult& base = results[0];
  TablePrinter table({"system", "idle", "dynamic", "total", "cycles"});
  for (std::size_t i = 0; i < names.size(); ++i) {
    const NormalizedEnergy n = normalize(results[i], base);
    table.add_row({names[i], TablePrinter::num(n.idle, 2),
                   TablePrinter::num(n.dynamic, 2),
                   TablePrinter::num(n.total, 2),
                   TablePrinter::num(n.cycles, 2)});
  }
  std::cout << "normalised to the base system ("
            << arrivals.size() << " arrivals, seed "
            << options.experiment.seed << "):\n";
  table.print(std::cout);
  return 0;
}

std::optional<Scenario> load_scenario(const CliOptions& options) {
  if (options.scenario_path.empty()) {
    std::cerr << "error: " << options.command << " requires --file FILE\n";
    return std::nullopt;
  }
  std::ifstream in(options.scenario_path);
  if (!in) {
    std::cerr << "cannot open " << options.scenario_path << "\n";
    return std::nullopt;
  }
  return Scenario::parse(in);
}

// Checkpointed scenario execution. The checkpointing driver owns the
// windowed collector (its accumulators are part of the resumable state),
// no sim tracer is attached (trace buffers are not checkpointed, so a
// resumed trace could never match), and the report's metrics snapshot
// comes from a local registry fed only by the deterministic scenario
// metrics — together with --report-deterministic this makes every output
// of a resumed run byte-identical to the uninterrupted one.
int cmd_scenario_checkpointed(const CliOptions& options, ObsSession* obs,
                              const Scenario& scenario,
                              const ScenarioContext& context,
                              PhaseTimers& timers) {
  CheckpointRunOptions copts;
  copts.window_cycles = options.window_cycles;
  copts.checkpoint_every = options.checkpoint_every;
  copts.checkpoint_out = options.checkpoint_out_path;
  copts.resume_from = options.resume_from_path;
  copts.halt_after_checkpoints = options.halt_after_checkpoints;

  std::optional<CheckpointRunOutcome> outcome;
  {
    const auto scope = timers.scope("run");
    outcome.emplace(run_scenario_checkpointed(scenario, context, copts));
  }
  if (outcome->resumed_from > 0) {
    std::cout << "resumed from checkpoint boundary " << outcome->resumed_from
              << "\n";
  }
  if (!copts.checkpoint_out.empty() && outcome->checkpoints_written > 0) {
    std::cout << outcome->checkpoints_written << " checkpoint(s) written to "
              << copts.checkpoint_out << "\n";
  }
  if (outcome->halted) {
    std::cout << "halted after " << outcome->checkpoints_written
              << " checkpoint(s); resume with --resume-from "
              << copts.checkpoint_out << "\n";
    return 3;
  }

  print_result(scenario.name, outcome->result);
  std::cout << "stream: " << outcome->stream.slices() << " slices, digest 0x"
            << std::hex << outcome->stream.digest() << std::dec << ", "
            << outcome->stream.invariant_violations()
            << " invariant violations\n";
  if (outcome->portfolio.has_value()) print_portfolio(*outcome->portfolio);
  if (outcome->dag.has_value()) print_dag(*outcome->dag);
  // Checkpoint outcomes carry no dispatch telemetry (it is per-process,
  // not part of the resumable state); record an empty block.
  const ScenarioOutcome view{outcome->result, outcome->stream,
                             DispatchTelemetry{}, outcome->portfolio,
                             outcome->dag};
  if (obs != nullptr) {
    record_scenario_metrics(obs->metrics, scenario.name + ".", view);
  }

  RunReport report;
  report.command = "scenario";
  report.name = scenario.name;
  report.policy = scenario.policy;
  report.system = std::string(to_string(scenario.system));
  report.discipline = std::string(to_string(scenario.discipline));
  report.cores = scenario.make_system().core_count();
  report.seed = scenario.seed;
  report.jobs = scenario.arrivals.count;
  report.suite_key = suite_cache_key(scenario.suite, context.energy());
  report.completed_jobs = outcome->result.completed_jobs;
  report.makespan = outcome->result.makespan;
  report.total_energy_mj = outcome->result.total_energy().millijoules();
  report.stream_digest = outcome->stream.digest();
  attach_window_summary(report, outcome->windows, AnomalyConfig{});
  attach_latency_summary(report, {&outcome->spans});
  std::string windows = windows_jsonl(outcome->windows);
  if (outcome->portfolio.has_value()) {
    attach_portfolio_summary(report, *outcome->portfolio);
    windows += portfolio_switch_jsonl(*outcome->portfolio);
  }
  if (outcome->dag.has_value()) attach_dag_summary(report, *outcome->dag);
  MetricsRegistry local;
  record_scenario_metrics(local, scenario.name + ".", view);
  report.metrics_json = local.to_json();
  // obs deliberately not forwarded: the report must not absorb the
  // wall-clock-dependent probe metrics.
  const int export_status =
      export_reports(options, nullptr, timers, std::move(report),
                     windows);
  if (export_status != 0) return export_status;
  return outcome->stream.invariant_violations() == 0 ? 0 : 1;
}

int cmd_scenario(const CliOptions& options, ObsSession* obs) {
  PhaseTimers timers;
  const std::optional<Scenario> scenario = load_scenario(options);
  if (!scenario.has_value()) return 1;
  std::optional<ScenarioContext> context;
  {
    const auto scope = timers.scope("setup");
    context.emplace(*scenario, options.experiment.profile_cache_path);
  }

  if (options.wants_checkpointing()) {
    if (!options.trace_out_path.empty()) {
      usage("--trace-out cannot be combined with checkpoint/resume flags "
            "(trace buffers are not part of the checkpointed state)");
    }
    return cmd_scenario_checkpointed(options, obs, *scenario, *context,
                                     timers);
  }

  EventTracer* tracer =
      obs != nullptr ? &obs->add_system_tracer(scenario->name) : nullptr;
  std::optional<WindowedCollector> windowed;
  std::optional<JobSpanCollector> spans;
  if (options.wants_windows()) {
    windowed.emplace(scenario->make_system().core_count(),
                     WindowedOptions{options.window_cycles, 0},
                     &context->suite());
    spans.emplace(scenario->policy, options.window_cycles);
    windowed->set_span_source(&*spans);
  }
  // Span collector before the windowed one (window-close handshake).
  FanoutObserver fanout(
      {tracer, spans.has_value() ? &*spans : nullptr,
       windowed.has_value() ? &*windowed : nullptr});
  ScheduleObserver* extra = nullptr;
  if (windowed.has_value()) {
    extra = &fanout;
  } else if (tracer != nullptr) {
    extra = tracer;
  }

  std::optional<ScenarioOutcome> outcome;
  {
    const auto scope = timers.scope("run");
    outcome.emplace(run_scenario(*scenario, *context, extra));
  }
  if (spans.has_value()) spans->finalize();
  if (windowed.has_value()) windowed->finalize();
  print_result(scenario->name, outcome->result);
  std::cout << "stream: " << outcome->stream.slices() << " slices, digest 0x"
            << std::hex << outcome->stream.digest() << std::dec << ", "
            << outcome->stream.invariant_violations()
            << " invariant violations\n";
  if (obs != nullptr) {
    record_scenario_metrics(obs->metrics, scenario->name + ".", *outcome);
  }

  RunReport report;
  report.command = "scenario";
  report.name = scenario->name;
  report.policy = scenario->policy;
  report.system = std::string(to_string(scenario->system));
  report.discipline = std::string(to_string(scenario->discipline));
  report.cores = scenario->make_system().core_count();
  report.seed = scenario->seed;
  report.jobs = scenario->arrivals.count;
  report.suite_key = suite_cache_key(scenario->suite, context->energy());
  report.completed_jobs = outcome->result.completed_jobs;
  report.makespan = outcome->result.makespan;
  report.total_energy_mj = outcome->result.total_energy().millijoules();
  report.stream_digest = outcome->stream.digest();
  if (windowed.has_value()) {
    attach_window_summary(report, *windowed, AnomalyConfig{});
  }
  if (spans.has_value()) attach_latency_summary(report, {&*spans});
  std::string windows =
      windowed.has_value() ? windows_jsonl(*windowed) : std::string();
  if (outcome->portfolio.has_value()) {
    print_portfolio(*outcome->portfolio);
    attach_portfolio_summary(report, *outcome->portfolio);
    if (windowed.has_value()) {
      windows += portfolio_switch_jsonl(*outcome->portfolio);
    }
  }
  if (outcome->dag.has_value()) {
    print_dag(*outcome->dag);
    attach_dag_summary(report, *outcome->dag);
  }
  const int export_status =
      export_reports(options, obs, timers, std::move(report), windows);
  if (export_status != 0) return export_status;
  return outcome->stream.invariant_violations() == 0 ? 0 : 1;
}

// "8,16" -> {8, 16}; parse errors go through the flag's usual parser.
std::vector<std::string> split_list(const std::string& flag,
                                    const std::string& text) {
  std::vector<std::string> items;
  std::string item;
  std::istringstream in(text);
  while (std::getline(in, item, ',')) {
    if (!item.empty()) items.push_back(item);
  }
  if (items.empty()) usage(flag + " expects a comma-separated list");
  return items;
}

int cmd_sweep(const CliOptions& options, ObsSession* obs) {
  PhaseTimers timers;
  const std::optional<Scenario> base = load_scenario(options);
  if (!base.has_value()) return 1;

  SweepGrid grid;
  grid.base = *base;
  grid.core_counts.clear();
  for (const std::string& item :
       split_list("--sweep-cores", options.sweep_cores)) {
    grid.core_counts.push_back(
        static_cast<std::size_t>(parse_count("--sweep-cores", item, 1)));
  }
  grid.mean_gaps.clear();
  if (options.sweep_gaps.empty()) {
    grid.mean_gaps.push_back(base->arrivals.mean_interarrival_cycles);
  } else {
    for (const std::string& item :
         split_list("--sweep-gaps", options.sweep_gaps)) {
      grid.mean_gaps.push_back(parse_real("--sweep-gaps", item, 1.0, 1e15));
    }
  }
  grid.policies = split_list("--sweep-policies", options.sweep_policies);
  grid.validate();

  std::optional<ScenarioContext> context;
  {
    const auto scope = timers.scope("setup");
    context.emplace(grid.context_scenario(),
                    options.experiment.profile_cache_path);
  }
  const std::size_t shards =
      options.shards == 0 ? grid.cell_count() : options.shards;

  // Supervised mode: per-cell timeout/retry/quarantine, optional shard
  // manifest for resume. Cell telemetry is captured by the supervisor
  // itself (and carried through the manifest), so no per-cell tracers —
  // a resumed sweep must reproduce the merged outputs byte-identically
  // without re-running completed cells.
  if (options.wants_supervision()) {
    if (!options.trace_out_path.empty()) {
      usage("--trace-out cannot be combined with supervised-sweep flags "
            "(completed cells resumed from a manifest are not re-run)");
    }
    SweepSupervisorOptions sopts;
    sopts.cell_timeout_ms = options.cell_timeout_ms;
    sopts.max_attempts = options.cell_retries;
    sopts.retry_backoff_ms = options.cell_backoff_ms;
    sopts.window_cycles =
        options.wants_windows() ? options.window_cycles : 0;
    sopts.manifest_out = options.manifest_out_path;
    sopts.resume_manifest = options.resume_from_path;

    std::optional<SupervisedSweepResult> sweep;
    {
      const auto scope = timers.scope("run");
      sweep.emplace(run_sweep_supervised(grid, *context, shards,
                                         ThreadPool::global(), sopts));
    }
    if (sweep->resumed_cells > 0) {
      std::cout << sweep->resumed_cells
                << " cell(s) resumed from the manifest\n";
    }

    TablePrinter table({"cell", "status", "completed", "total mJ",
                        "makespan", "digest"});
    std::uint64_t violations = 0;
    for (const SweepCell& cell : sweep->cells) {
      if (!cell.completed) {
        table.add_row({cell.label, "FAILED", "-", "-", "-", "-"});
        continue;
      }
      std::ostringstream digest;
      digest << std::hex << cell.stream_digest;
      table.add_row(
          {cell.label, "ok", std::to_string(cell.result.completed_jobs),
           TablePrinter::num(cell.result.total_energy().millijoules(), 2),
           std::to_string(cell.result.makespan), digest.str()});
      violations += cell.invariant_violations;
    }
    std::cout << grid.cell_count() << " cells in " << shards << " shards ("
              << ThreadPool::global().thread_count() << " threads, "
              << sweep->failed.size() << " quarantined):\n";
    table.print(std::cout);
    for (const SweepFailure& f : sweep->failed) {
      std::cerr << "quarantined " << f.label << " after " << f.attempts
                << " attempt(s): " << (f.timed_out ? "timeout: " : "")
                << f.reason << "\n";
    }
    if (obs != nullptr) {
      record_sweep_metrics(obs->metrics, "sweep.", sweep->cells);
    }

    RunReport report;
    report.command = "sweep";
    report.name = base->name;
    report.policy = options.sweep_policies;
    report.system = "grid";
    report.discipline = std::string(to_string(base->discipline));
    report.cores = 0;
    report.seed = base->seed;
    report.jobs = static_cast<std::uint64_t>(base->arrivals.count) *
                  sweep->cells.size();
    report.suite_key = suite_cache_key(base->suite, context->energy());
    std::string windows;
    for (const SweepCell& cell : sweep->cells) {
      if (!cell.completed) continue;
      report.completed_jobs += cell.result.completed_jobs;
      report.makespan =
          std::max<std::uint64_t>(report.makespan, cell.result.makespan);
      report.total_energy_mj += cell.result.total_energy().millijoules();
      report.window_cycles = sopts.window_cycles;
      report.windows_closed += cell.windows_closed;
      report.dropped_windows += cell.dropped_windows;
      report.window_jobs_completed += cell.window_jobs_completed;
      report.window_energy_mj += cell.window_energy_mj;
      windows += cell.windows_jsonl;
    }
    for (const SweepFailure& f : sweep->failed) {
      report.failed_cells.push_back(
          {f.label, f.attempts, f.timed_out, f.reason});
    }
    // Like the checkpointed scenario path, the report's metrics come
    // from a local registry so a resumed sweep's report is
    // byte-identical to a clean run's.
    MetricsRegistry local;
    record_sweep_metrics(local, "sweep.", sweep->cells);
    report.metrics_json = local.to_json();
    const int export_status =
        export_reports(options, nullptr, timers, std::move(report), windows);
    if (export_status != 0) return export_status;
    if (!sweep->failed.empty()) return 1;
    if (violations != 0) {
      std::cerr << "error: " << violations
                << " schedule invariant violations\n";
      return 1;
    }
    return 0;
  }

  // Per-cell recorders: one tracer and/or windowed collector per cell,
  // created serially before the fan-out (stable registration order),
  // each touched only by the shard running its cell.
  auto cell_label = [&](std::size_t i) {
    const Scenario cell = grid.cell_scenario(i);
    const std::size_t gap_i =
        (i / grid.policies.size()) % grid.mean_gaps.size();
    return "c" + std::to_string(cell.cores) + ".g" + std::to_string(gap_i) +
           "." + cell.policy;
  };
  std::deque<WindowedCollector> collectors;  // stable addresses
  std::deque<JobSpanCollector> cell_spans;
  std::deque<FanoutObserver> fanouts;
  std::vector<ScheduleObserver*> cell_observers;
  if (obs != nullptr || options.wants_windows()) {
    for (std::size_t i = 0; i < grid.cell_count(); ++i) {
      EventTracer* tracer =
          obs != nullptr ? &obs->add_system_tracer(cell_label(i)) : nullptr;
      WindowedCollector* collector = nullptr;
      JobSpanCollector* spans = nullptr;
      if (options.wants_windows()) {
        collectors.emplace_back(
            grid.cell_scenario(i).make_system().core_count(),
            WindowedOptions{options.window_cycles, 0}, &context->suite());
        collector = &collectors.back();
        // Per-cell spans, labelled by the cell's policy so the merged
        // report breaks latency down per contender.
        cell_spans.emplace_back(grid.cell_scenario(i).policy,
                                options.window_cycles);
        spans = &cell_spans.back();
        collector->set_span_source(spans);
      }
      if (collector != nullptr) {
        fanouts.emplace_back(
            std::vector<ScheduleObserver*>{tracer, spans, collector});
        cell_observers.push_back(&fanouts.back());
      } else {
        cell_observers.push_back(tracer);
      }
    }
  }

  std::vector<SweepCell> cells;
  {
    const auto scope = timers.scope("run");
    cells = run_sweep(grid, *context, shards, ThreadPool::global(),
                      cell_observers);
  }
  for (JobSpanCollector& spans : cell_spans) spans.finalize();
  for (WindowedCollector& collector : collectors) collector.finalize();

  TablePrinter table({"cell", "completed", "total mJ", "makespan",
                      "digest"});
  std::uint64_t violations = 0;
  for (const SweepCell& cell : cells) {
    std::ostringstream digest;
    digest << std::hex << cell.stream_digest;
    table.add_row({cell.label, std::to_string(cell.result.completed_jobs),
                   TablePrinter::num(cell.result.total_energy().millijoules(),
                                     2),
                   std::to_string(cell.result.makespan), digest.str()});
    violations += cell.invariant_violations;
  }
  std::cout << grid.cell_count() << " cells in " << shards << " shards ("
            << ThreadPool::global().thread_count() << " threads):\n";
  table.print(std::cout);
  if (obs != nullptr) record_sweep_metrics(obs->metrics, "sweep.", cells);

  // Aggregated sweep report: totals over the grid; window summary sums
  // each cell's collector (per-cell windows land in --windows-out, one
  // JSONL block per cell in grid order, window indices restarting at 0).
  RunReport report;
  report.command = "sweep";
  report.name = base->name;
  report.policy = options.sweep_policies;
  report.system = "grid";
  report.discipline = std::string(to_string(base->discipline));
  report.cores = 0;
  report.seed = base->seed;
  report.jobs =
      static_cast<std::uint64_t>(base->arrivals.count) * cells.size();
  report.suite_key = suite_cache_key(base->suite, context->energy());
  std::string windows;
  for (const SweepCell& cell : cells) {
    report.completed_jobs += cell.result.completed_jobs;
    report.makespan = std::max<std::uint64_t>(report.makespan,
                                              cell.result.makespan);
    report.total_energy_mj += cell.result.total_energy().millijoules();
  }
  for (const WindowedCollector& collector : collectors) {
    report.window_cycles = collector.window_cycles();
    report.windows_closed += collector.windows_closed();
    report.dropped_windows += collector.dropped_windows();
    for (const WindowRecord& w : collector.windows()) {
      report.window_jobs_completed += w.jobs_completed;
      report.window_energy_mj += w.energy_mj;
    }
    windows += windows_jsonl(collector);
  }
  if (!cell_spans.empty()) {
    // Merged per-policy latency: cells sharing a policy fold into one
    // row (fixed histogram boundaries make the merge exact).
    std::vector<const JobSpanCollector*> span_ptrs;
    for (const JobSpanCollector& spans : cell_spans) {
      span_ptrs.push_back(&spans);
    }
    attach_latency_summary(report, span_ptrs);
  }
  const int export_status =
      export_reports(options, obs, timers, std::move(report), windows);
  if (export_status != 0) return export_status;

  if (violations != 0) {
    std::cerr << "error: " << violations << " schedule invariant violations\n";
    return 1;
  }
  return 0;
}

std::optional<std::string> slurp_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

int cmd_bench_diff(const CliOptions& options) {
  if (options.positional.size() != 2) {
    usage("bench-diff expects exactly two operands: BASELINE.json "
          "CURRENT.json");
  }
  auto slurp = slurp_file;
  const std::optional<std::string> baseline = slurp(options.positional[0]);
  if (!baseline.has_value()) {
    std::cerr << "cannot open " << options.positional[0] << "\n";
    return 2;
  }
  const std::optional<std::string> current = slurp(options.positional[1]);
  if (!current.has_value()) {
    std::cerr << "cannot open " << options.positional[1] << "\n";
    return 2;
  }
  const BenchDiffResult diff =
      bench_diff(*baseline, *current, options.tolerance);
  std::cout << "bench-diff " << options.positional[0] << " -> "
            << options.positional[1] << " (tolerance "
            << options.tolerance << ")\n"
            << diff.summary(options.tolerance);
  return diff.regressed() ? 1 : 0;
}

int cmd_analyze(const CliOptions& options) {
  std::string output;
  bool failed = false;
  if (options.analyze_diff_mode) {
    if (options.positional.size() != 2) {
      usage("analyze --diff expects exactly two operands: BASELINE.json "
            "CURRENT.json");
    }
    const std::optional<std::string> baseline =
        slurp_file(options.positional[0]);
    if (!baseline.has_value()) {
      std::cerr << "cannot open " << options.positional[0] << "\n";
      return 2;
    }
    const std::optional<std::string> current =
        slurp_file(options.positional[1]);
    if (!current.has_value()) {
      std::cerr << "cannot open " << options.positional[1] << "\n";
      return 2;
    }
    output = "analyze --diff " + options.positional[0] + " -> " +
             options.positional[1] + " (tolerance " +
             CsvWriter::number(options.tolerance) + ")\n";
    bool regressed = false;
    output += analyze_diff(*baseline, *current, options.tolerance,
                           &regressed);
    failed = regressed;
  } else {
    if (options.analyze_report_path.empty()) {
      usage("analyze requires --report FILE (or --diff A B)");
    }
    const std::optional<std::string> report =
        slurp_file(options.analyze_report_path);
    if (!report.has_value()) {
      std::cerr << "cannot open " << options.analyze_report_path << "\n";
      return 2;
    }
    std::string windows;
    if (!options.analyze_windows_path.empty()) {
      const std::optional<std::string> jsonl =
          slurp_file(options.analyze_windows_path);
      if (!jsonl.has_value()) {
        std::cerr << "cannot open " << options.analyze_windows_path << "\n";
        return 2;
      }
      windows = *jsonl;
    }
    AnalyzeOptions aopts;
    aopts.top = options.analyze_top;
    output = analyze_run(*report, windows, aopts);
  }
  if (!options.analyze_out_path.empty()) {
    if (!write_text_file(options.analyze_out_path, output, "analysis")) {
      return 1;
    }
  } else {
    std::cout << output;
  }
  return failed ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  const CliOptions options = parse(argc, argv);
  // Observability is opt-in: with neither flag the probe stays null and
  // the simulators run observer-free (the zero-cost disabled path).
  std::optional<ObsSession> obs;
  std::optional<ScopedProbe> probe;
  if (!options.trace_out_path.empty() || !options.metrics_out_path.empty() ||
      !options.report_out_path.empty()) {
    obs.emplace();
    obs->trace_path = options.trace_out_path;
    obs->metrics_path = options.metrics_out_path;
    obs->max_trace_events = options.max_trace_events;
    obs->job_spans = options.trace_spans;
    obs->runtime.set_max_events(options.max_trace_events);
    probe.emplace(&obs->recorder);
  }
  ObsSession* obs_ptr = obs.has_value() ? &*obs : nullptr;
  int status = 2;
  try {
    if (options.command == "characterize") {
      status = cmd_characterize(options);
    } else if (options.command == "train") {
      status = cmd_train(options);
    } else if (options.command == "run" || options.command == "compare") {
      status = cmd_run_or_compare(options, obs_ptr);
    } else if (options.command == "scenario") {
      status = cmd_scenario(options, obs_ptr);
    } else if (options.command == "sweep") {
      status = cmd_sweep(options, obs_ptr);
    } else if (options.command == "bench-diff") {
      status = cmd_bench_diff(options);
    } else if (options.command == "analyze") {
      status = cmd_analyze(options);
    } else {
      usage("unknown command " + options.command);
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  if (status == 0 && obs.has_value() && !obs->finish()) return 1;
  return status;
}
