#!/usr/bin/env sh
# Builds the test suite under AddressSanitizer and UBSan (one build tree
# per sanitizer) and runs ctest in each. Any sanitizer report fails the
# run (-fno-sanitize-recover=all aborts on the first finding).
#
# Usage: tools/run_sanitized_tests.sh [address|undefined]...
#        (no arguments = both)
set -eu

repo="$(cd "$(dirname "$0")/.." && pwd)"
sanitizers="${*:-address undefined}"

for sanitizer in $sanitizers; do
  build="$repo/build-$sanitizer"
  echo "=== $sanitizer sanitizer: configuring $build ==="
  cmake -B "$build" -S "$repo" -DHETSCHED_SANITIZE="$sanitizer" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build "$build" -j
  echo "=== $sanitizer sanitizer: running tests ==="
  ctest --test-dir "$build" --output-on-failure -j
done

echo "=== all sanitized test runs passed ==="
